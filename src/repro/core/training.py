"""Training-data collection (paper Section 3.1) and screening.

Part A runs the 8 multi-threaded mini-programs over problem sizes, thread
counts and all supported modes; Part B runs the sequential mini-programs in
good and bad-ma modes over sizes and access patterns.  Each run yields one
labeled instance: the 15 Table-2 events normalized by instructions retired.

The collection *plan* is declarative data (rows of sizes x threads x
patterns x repeats) tuned so the initial instance counts land on the paper's
Table 3 (Part A: 324 good / 216 bad-fs / 135 bad-ma; Part B: 171 good /
100 bad-ma).  The paper then manually removed instances that were unsuitable
as training data; :func:`screen_instances` implements that examination as an
explicit rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.lab import Lab

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel import ExecutionEngine
from repro.errors import ConfigError
from repro.ml.dataset import Dataset, Instance
from repro.pmu.events import TABLE2_EVENTS, feature_events
from repro.workloads.base import Mode, RunConfig
from repro.workloads.registry import get_workload

#: Feature columns: Table 2 events 1-15 (event 16 is the normalizer).
FEATURES = feature_events()
FEATURE_NAMES = [e.name for e in FEATURES]

#: Events the screening rule looks at when judging bad-ma significance:
#: the memory-traffic signals (6: L2 fill, 14: L1D repl, 13: DTLB misses).
_SIGNAL_EVENTS = ("L2_Transactions.FILL", "L1D_Cache_Replacements",
                  "DTLB_Misses")

#: Background-interference probability for sequential (Part B) runs; a
#: single-threaded run shares the machine with everything else, which is why
#: the paper had to discard a quarter of its sequential "good" instances.
PART_B_INTERFERENCE = 0.28


@dataclass(frozen=True)
class PlanRow:
    """One block of the collection plan."""

    workload: str
    mode: Mode
    sizes: Tuple[int, ...]
    threads: Tuple[int, ...] = (1,)
    patterns: Tuple[str, ...] = ("random",)
    reps: int = 1

    def configs(self) -> Iterator[RunConfig]:
        for size in self.sizes:
            for t in self.threads:
                for pat in self.patterns:
                    for rep in range(self.reps):
                        yield RunConfig(
                            threads=t,
                            mode=self.mode,
                            size=size,
                            pattern=pat,
                            rep=rep,
                        )

    def count(self) -> int:
        return (
            len(self.sizes) * len(self.threads) * len(self.patterns) * self.reps
        )


_THREADS = (3, 6, 9, 12)
_SCALAR = ("psums", "padding", "false1")
_VECTOR = ("psumv", "pdot", "count")
_MATRIX = ("pmatmult", "pmatcompare")

_SZ = {name: get_workload(name).train_sizes for name in
       _SCALAR + _VECTOR + _MATRIX + ("seq_read", "seq_write", "seq_rmw",
                                      "seq_matmul")}
_VEC_EXTRA = {name: (get_workload(name).extra_size,) for name in _VECTOR}

#: Part A: multi-threaded mini-programs.  Counts per mode:
#:   good   3*(3*4*3) + 3*(4*4*3) + 2*(3*4*3) = 108+144+72 = 324
#:   bad-fs 3*(3*4*2) + 3*(3*4*2) + 3*(1*4*2) + 2*(3*4*2) = 72+72+24+48 = 216
#:   bad-ma 3*(3*4*3pat) + 1*(3*3thr*3pat) = 108+27 = 135
#: The vector bad-ma rows deliberately include a size (16384) whose
#: per-thread share fits L1 at higher thread counts: those runs show no
#: significant difference from good and are what the screening step removes
#: (the paper's 22 discarded Part A bad-ma instances).
def make_part_a_plan(threads: Tuple[int, ...] = _THREADS) -> List[PlanRow]:
    """The Part A plan for a machine offering the given thread counts.

    The default matches the paper's 12-core testbed (3/6/9/12); porting to
    another machine (Section 2.1 steps 2-6) substitutes its own ladder.
    """
    upper = tuple(threads[1:]) or threads
    return (
        [PlanRow(w, Mode.GOOD, _SZ[w], threads, ("random",), 3)
         for w in _SCALAR]
        + [PlanRow(w, Mode.GOOD, _SZ[w] + _VEC_EXTRA[w], threads,
                   ("random",), 3) for w in _VECTOR]
        + [PlanRow(w, Mode.GOOD, _SZ[w], threads, ("random",), 3)
           for w in _MATRIX]
        + [PlanRow(w, Mode.BAD_FS, _SZ[w], threads, ("random",), 2)
           for w in _SCALAR + _VECTOR + _MATRIX]
        + [PlanRow(w, Mode.BAD_FS, _VEC_EXTRA[w], threads, ("random",), 2)
           for w in _VECTOR]
        + [PlanRow(w, Mode.BAD_MA, (16_384,) + _SZ[w][:2], threads,
                   ("random", "stride4", "stride16"), 1) for w in _VECTOR]
        + [PlanRow("pmatcompare", Mode.BAD_MA, _SZ["pmatcompare"], upper,
                   ("random", "stride4", "stride16"), 1)]
    )


PART_A_PLAN: List[PlanRow] = make_part_a_plan()

_SEQ_ARRAY = ("seq_read", "seq_write", "seq_rmw")
_SEQ_SIZES = (32_768, 49_152, 65_536, 131_072, 196_608, 262_144)
_SEQ_PATTERNS = ("random", "stride2", "stride4", "stride8", "stride16")

#: Part B: sequential mini-programs.  Counts per mode:
#:   good   3*(6*9) + 1*(3*3) = 162+9 = 171
#:   bad-ma 3*(6*5pat) + 3*3 + 1 = 90+9+1 = 100
PART_B_PLAN: List[PlanRow] = (
    [PlanRow(w, Mode.GOOD, _SEQ_SIZES, (1,), ("random",), 9)
     for w in _SEQ_ARRAY]
    + [PlanRow("seq_matmul", Mode.GOOD, _SZ["seq_matmul"], (1,), ("random",), 3)]
    + [PlanRow(w, Mode.BAD_MA, _SEQ_SIZES, (1,), _SEQ_PATTERNS, 1)
       for w in _SEQ_ARRAY]
    + [PlanRow("seq_matmul", Mode.BAD_MA, _SZ["seq_matmul"], (1,),
               ("random",), 3)]
    + [PlanRow("seq_matmul", Mode.BAD_MA, (_SZ["seq_matmul"][-1],), (1,),
               ("random",), 1)]
)


def plan_counts(plan: Sequence[PlanRow]) -> Dict[str, int]:
    """Instances per mode a plan will produce."""
    out: Dict[str, int] = {}
    for row in plan:
        out[row.mode.value] = out.get(row.mode.value, 0) + row.count()
    return out


# ----------------------------------------------------------------- collection


def collect_plan(
    lab: Lab,
    plan: Sequence[PlanRow],
    part: str,
    interference_p: float = 0.0,
    engine: Optional["ExecutionEngine"] = None,
) -> List[Instance]:
    """Run every configuration in ``plan`` and return labeled instances.

    With an :class:`~repro.parallel.ExecutionEngine`, the plan's simulations
    are prefetched across worker processes first; the serial measurement
    loop below then only samples PMU noise off cached results, so parallel
    collection is bit-identical to serial.
    """
    if engine is not None:
        engine.prefetch_simulations(
            lab,
            [(get_workload(row.workload), cfg)
             for row in plan for cfg in row.configs()],
        )
    instances: List[Instance] = []
    for row in plan:
        workload = get_workload(row.workload)
        for cfg in row.configs():
            vec = lab.measure(workload, cfg, TABLE2_EVENTS,
                              interference_p=interference_p)
            instances.append(
                Instance(
                    features=vec.features(FEATURES),
                    label=cfg.mode.value,
                    meta={
                        "part": part,
                        "workload": row.workload,
                        "threads": cfg.threads,
                        "size": cfg.size,
                        "pattern": cfg.pattern,
                        "rep": cfg.rep,
                        "seconds": vec.meta.get("seconds"),
                    },
                )
            )
    return instances


# ------------------------------------------------------------------ screening


@dataclass
class ScreeningReport:
    """What the examination kept and why it removed the rest."""

    kept: List[Instance]
    removed: List[Instance]
    removed_by_mode: Dict[str, int] = field(default_factory=dict)

    @property
    def n_removed(self) -> int:
        return len(self.removed)


def _group_key(inst: Instance) -> Tuple:
    return (
        inst.meta.get("workload"),
        inst.meta.get("threads"),
        inst.meta.get("size"),
    )


def _signal(inst: Instance, idx: Dict[str, int]) -> np.ndarray:
    return np.array([inst.features[idx[name]] for name in _SIGNAL_EVENTS])


def screen_instances(
    instances: Sequence[Instance],
    min_badma_ratio: float = 4.0,
    good_outlier_ratio: float = 2.2,
) -> ScreeningReport:
    """The paper's "manual examination" of collected instances, as a rule.

    * a **bad-ma** instance is unsuitable when its memory-traffic signals are
      not at least ``min_badma_ratio`` x the median good run of the same
      (workload, threads, size) — the paper removed 22 such Part A instances
      and 3 in Part B;
    * a **good** instance is unsuitable when its signals are more than
      ``good_outlier_ratio`` x the median of its sibling good runs
      (interference outliers — 41 removed in Part B);
    * **bad-fs** instances are never removed (the paper removed none).
    """
    if min_badma_ratio <= 1.0 or good_outlier_ratio <= 1.0:
        raise ConfigError("screening ratios must be > 1")
    idx = {name: FEATURE_NAMES.index(name) for name in _SIGNAL_EVENTS}

    good_medians: Dict[Tuple, np.ndarray] = {}
    by_group: Dict[Tuple, List[np.ndarray]] = {}
    by_wl_threads: Dict[Tuple, List[np.ndarray]] = {}
    for inst in instances:
        if inst.label == Mode.GOOD.value:
            sig = _signal(inst, idx)
            by_group.setdefault(_group_key(inst), []).append(sig)
            fallback = (inst.meta.get("workload"), inst.meta.get("threads"))
            by_wl_threads.setdefault(fallback, []).append(sig)
    for key, sigs in by_group.items():
        good_medians[key] = np.median(np.vstack(sigs), axis=0)
    # A bad-ma config without a same-size good sibling (the plan runs some
    # bad-ma-only sizes) is judged against the same workload+threads good
    # runs across sizes — the examiner's obvious reference.
    fallback_medians = {
        key: np.median(np.vstack(sigs), axis=0)
        for key, sigs in by_wl_threads.items()
    }

    kept: List[Instance] = []
    removed: List[Instance] = []
    removed_by_mode: Dict[str, int] = {}
    for inst in instances:
        sig = _signal(inst, idx)
        gm = good_medians.get(_group_key(inst))
        if gm is None:
            gm = fallback_medians.get(
                (inst.meta.get("workload"), inst.meta.get("threads"))
            )
        drop = False
        if inst.label == Mode.BAD_MA.value and gm is not None:
            ratios = sig / np.maximum(gm, 1e-12)
            drop = float(ratios.max()) < min_badma_ratio
        elif inst.label == Mode.GOOD.value and gm is not None:
            ratios = sig / np.maximum(gm, 1e-12)
            drop = float(ratios.max()) > good_outlier_ratio
        if drop:
            removed.append(inst)
            removed_by_mode[inst.label] = removed_by_mode.get(inst.label, 0) + 1
        else:
            kept.append(inst)
    return ScreeningReport(kept, removed, removed_by_mode)


# ------------------------------------------------------------------- assembly


@dataclass
class TrainingData:
    """Both parts, before and after screening, plus the final dataset."""

    part_a_initial: List[Instance]
    part_b_initial: List[Instance]
    part_a: List[Instance]
    part_b: List[Instance]
    screening_a: ScreeningReport
    screening_b: ScreeningReport

    @property
    def dataset(self) -> Dataset:
        return Dataset.from_instances(self.part_a + self.part_b, FEATURE_NAMES)

    @property
    def dataset_a(self) -> Dataset:
        return Dataset.from_instances(self.part_a, FEATURE_NAMES)

    @property
    def dataset_b(self) -> Dataset:
        return Dataset.from_instances(self.part_b, FEATURE_NAMES)

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Rows of the paper's Table 3."""

        def tally(instances: Sequence[Instance]) -> Dict[str, int]:
            out = {m.value: 0 for m in Mode}
            for inst in instances:
                out[inst.label] += 1
            out["total"] = len(instances)
            return out

        return {
            "part_a_initial": tally(self.part_a_initial),
            "part_b_initial": tally(self.part_b_initial),
            "part_a": tally(self.part_a),
            "part_b": tally(self.part_b),
            "full": tally(self.part_a + self.part_b),
        }


def collect_training_data(
    lab: Optional[Lab] = None,
    screen: bool = True,
    threads: Optional[Tuple[int, ...]] = None,
    jobs: Optional[int] = None,
    engine: Optional["ExecutionEngine"] = None,
) -> TrainingData:
    """Run the full Section 3.1 collection: Parts A and B plus screening.

    ``threads`` overrides the multi-threaded ladder (defaults to the paper's
    3/6/9/12; pass e.g. ``(2, 4, 6, 8)`` when porting to an 8-core machine).
    ``jobs`` (or an explicit ``engine``) parallelizes the simulations across
    processes; the collected instances are bit-identical either way.
    """
    lab = lab or Lab()
    if engine is None and jobs is not None:
        from repro.parallel import ExecutionEngine

        engine = ExecutionEngine(jobs)
    plan_a = PART_A_PLAN if threads is None else make_part_a_plan(threads)
    part_a_initial = collect_plan(lab, plan_a, part="A", engine=engine)
    part_b_initial = collect_plan(
        lab, PART_B_PLAN, part="B", interference_p=PART_B_INTERFERENCE,
        engine=engine,
    )
    if screen:
        rep_a = screen_instances(part_a_initial)
        rep_b = screen_instances(part_b_initial)
    else:
        rep_a = ScreeningReport(list(part_a_initial), [], {})
        rep_b = ScreeningReport(list(part_b_initial), [], {})
    return TrainingData(
        part_a_initial=part_a_initial,
        part_b_initial=part_b_initial,
        part_a=rep_a.kept,
        part_b=rep_b.kept,
        screening_a=rep_a,
        screening_b=rep_b,
    )
