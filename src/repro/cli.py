"""Command-line tools.

* ``repro-perf stat -e EV1,EV2 -- WORKLOAD [options]`` — perf(1)-style event
  counting for any registered workload or suite program;
* ``repro-train`` — collect training data, fit the J48 tree, print Table 3/4
  style summaries and the tree;
* ``repro-detect WORKLOAD [options]`` — classify a program run (the paper's
  end-user workflow);
* ``repro-analyze WORKLOAD [options]`` — simulation-free static sharing
  analysis and lint (also ``--crosscheck`` for the three-detector
  disagreement harness);
* ``repro-experiment ID...`` — regenerate paper tables/figures;
* ``repro-bench`` — replay the pinned simulator benchmark grid, write a
  BENCH-compatible result + run manifest, and gate against a committed
  baseline (the CI perf-regression job);
* ``repro-serve`` — online detection service: JSON-lines TCP server with
  batched compiled-tree inference, plus its client, load generator and
  latency benchmark (``BENCH_serve.json``);
* ``repro-results`` — durable run store: ingest bench/serve/manifest/
  crosscheck payloads into an append-only SQLite history and gate the
  latest run against its trajectory (rolling median ± MAD);
* ``repro <perf|train|detect|analyze|bench|serve|results|experiment> ...``
  — umbrella command dispatching to the above.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.core.lab import Lab
from repro.core.detector import FalseSharingDetector
from repro.errors import ReproError, WorkloadError
from repro.pmu.events import TABLE2_EVENTS, event_by_name
from repro.utils.tables import render_table
from repro.workloads.base import RunConfig
from repro.workloads.registry import all_workloads, get_workload


def _resolve_target(name: str):
    """A mini-program or a suite program, by name."""
    try:
        return get_workload(name), "mini"
    except WorkloadError:
        from repro.suites import get_program

        return get_program(name), "suite"


def _build_config(target, kind: str, args) -> object:
    if kind == "mini":
        return RunConfig(
            threads=args.threads,
            mode=args.mode,
            size=args.size or target.train_sizes[0],
            pattern=args.pattern,
        )
    from repro.suites.base import SuiteCase

    opt = args.opt if args.opt.startswith("-") else f"-{args.opt}"
    return SuiteCase(
        input_set=args.input or target.inputs[0],
        opt=opt,
        threads=args.threads,
    )


def _add_jobs_option(p: argparse.ArgumentParser) -> None:
    p.add_argument("-j", "--jobs", type=int, default=os.cpu_count() or 1,
                   help="worker processes for case-grid simulation "
                        "(default: all cores; 1 = serial; results are "
                        "identical either way)")


def _apply_jobs(args) -> None:
    from repro.parallel import set_default_jobs

    set_default_jobs(max(1, args.jobs))


def _add_run_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("workload", help="mini-program or suite program name")
    p.add_argument("-t", "--threads", type=int, default=6)
    p.add_argument("-m", "--mode", default="good",
                   help="mini-programs: good | bad-fs | bad-ma")
    p.add_argument("-n", "--size", type=int, default=0,
                   help="problem size (mini-programs; 0 = default)")
    p.add_argument("--pattern", default="random",
                   help="bad-ma access pattern (random, strideN)")
    p.add_argument("--input", default="",
                   help="input set (suite programs, e.g. simsmall)")
    p.add_argument("--opt", default="-O2",
                   help="optimization level for suite programs; "
                        "use --opt=-O2 or the dashless form O2")


def perf_main(argv: Optional[Sequence[str]] = None) -> int:
    """`perf stat`-style counting on the simulated machine."""
    parser = argparse.ArgumentParser(
        prog="repro-perf",
        description="Count hardware events for a workload run "
                    "(simulated Westmere DP).",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)
    stat = sub.add_parser("stat", help="run a workload and print event counts")
    _add_run_options(stat)
    stat.add_argument("-e", "--events", default="",
                      help="comma-separated event names (default: Table 2)")
    stat.add_argument("--raw", action="store_true",
                      help="print raw counts instead of normalized")
    lst = sub.add_parser("list", help="list workloads and events")
    args = parser.parse_args(argv)

    if args.cmd == "list":
        print("mini-programs:")
        for w in all_workloads():
            print(f"  {w.name:14s} [{w.kind}] modes="
                  f"{sorted(m.value for m in w.modes)} - {w.description}")
        from repro.suites import all_programs

        print("suite programs:")
        for p in all_programs():
            print(f"  {p.name:18s} [{p.suite}] inputs={p.inputs}")
        print("events: (Table 2)")
        for e in TABLE2_EVENTS:
            print(f"  {e.selector}  {e.name:40s} {e.description}")
        return 0

    try:
        target, kind = _resolve_target(args.workload)
        cfg = _build_config(target, kind, args)
        if args.events:
            events = [event_by_name(n.strip())
                      for n in args.events.split(",") if n.strip()]
        else:
            events = list(TABLE2_EVENTS)
        lab = Lab()
        vec = lab.measure(target, cfg, events)
        lab.flush()
        rows = []
        for e in events:
            if args.raw:
                rows.append([e.selector, e.name, f"{vec.count(e):.0f}"])
            else:
                rows.append([e.selector, e.name,
                             f"{vec.normalized(e):.3e}"])
        unit = "raw count" if args.raw else "count / instruction"
        print(render_table(["selector", "event", unit], rows,
                           title=f"{args.workload}: {cfg.run_id()}"))
        print(f"instructions: {vec.instructions:.0f}   "
              f"simulated time: {vec.meta.get('seconds', 0.0) * 1e3:.3f} ms   "
              f"counting overhead: {100 * vec.overhead:.2f}%")
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def train_main(argv: Optional[Sequence[str]] = None) -> int:
    """Collect training data and fit the classifier; print the summary."""
    parser = argparse.ArgumentParser(
        prog="repro-train",
        description="Collect mini-program training data and train the "
                    "J48 detector.",
    )
    parser.add_argument("--no-screen", action="store_true",
                        help="skip the instance-screening step")
    parser.add_argument("--cv", type=int, default=10,
                        help="cross-validation folds (0 disables)")
    _add_jobs_option(parser)
    args = parser.parse_args(argv)
    try:
        from repro.core.training import collect_training_data

        _apply_jobs(args)
        lab = Lab()
        td = collect_training_data(lab, screen=not args.no_screen,
                                   jobs=max(1, args.jobs))
        lab.flush()
        s = td.summary()
        rows = [[part, c["good"], c["bad-fs"], c["bad-ma"], c["total"]]
                for part, c in s.items()]
        print(render_table(["part", "good", "bad-fs", "bad-ma", "total"],
                           rows, title="Training data"))
        det = FalseSharingDetector(lab)
        det.fit(training=td)
        print("\nLearned tree:")
        print(det.render_tree())
        print(f"\nevents used (Table 2 #): {det.tree_event_numbers()}")
        if args.cv:
            cm = det.cross_validate(k=args.cv)
            print(cm.render(f"\n{args.cv}-fold CV"))
            print(f"accuracy: {cm.correct}/{cm.total} = "
                  f"{100 * cm.accuracy:.2f}%")
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def detect_main(argv: Optional[Sequence[str]] = None) -> int:
    """Train (cached) and classify one program run."""
    parser = argparse.ArgumentParser(
        prog="repro-detect",
        description="Detect false sharing in a workload run.",
    )
    _add_run_options(parser)
    parser.add_argument("--slices", type=int, default=0,
                        help="classify N time slices instead of the whole "
                             "run (Section 6 future work)")
    parser.add_argument("--advise", action="store_true",
                        help="on a bad-fs verdict, name the contended lines "
                             "and estimate the padding fix")
    _add_jobs_option(parser)
    args = parser.parse_args(argv)
    try:
        from repro.experiments.context import default_context

        _apply_jobs(args)
        ctx = default_context()
        target, kind = _resolve_target(args.workload)
        cfg = _build_config(target, kind, args)
        if args.slices:
            from repro.core.slicing import SlicedDetector

            diag = SlicedDetector(ctx.detector,
                                  n_slices=args.slices).diagnose(target, cfg)
            print(diag.render())
            ctx.lab.flush()
            return 0 if diag.overall == "good" else 1
        if args.advise:
            from repro.core.advisor import FalseSharingAdvisor

            report = FalseSharingAdvisor(ctx.detector).diagnose(target, cfg)
            print(report.render())
            ctx.lab.flush()
            return 0 if report.label == "good" else 1
        vec = ctx.lab.measure(target, cfg, TABLE2_EVENTS)
        label = ctx.detector.classify_vector(vec)
        ctx.lab.flush()
        print(f"{args.workload} [{cfg.run_id()}] -> {label}")
        if label == "bad-fs":
            print("false sharing detected: threads are writing distinct "
                  "data on shared cache lines")
        elif label == "bad-ma":
            print("no false sharing, but the memory-access pattern is "
                  "cache-hostile")
        else:
            print("no memory-system problem detected")
        return 0 if label == "good" else 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def analyze_main(argv: Optional[Sequence[str]] = None) -> int:
    """Static sharing analysis: lint one run, or cross-check the grid."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "predict":
        return predict_main(argv[1:])
    if argv and argv[0] == "symbols":
        return symbols_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Simulation-free static sharing analysis: classify "
                    "every cache line, lint the layout (FS001..FS004), "
                    "or cross-check static vs shadow-oracle vs tree "
                    "verdicts over the mini-program grid.  Subcommands: "
                    "`predict` (trace-free plan analysis + FS005..FS008 "
                    "lint, baseline gating), `symbols` (the address-range "
                    "symbol table of a workload's layout).",
    )
    parser.add_argument("workload", nargs="?", default="",
                        help="mini-program or suite program name "
                             "(omit with --crosscheck)")
    parser.add_argument("-t", "--threads", type=int, default=6)
    parser.add_argument("-m", "--mode", default="good",
                        help="mini-programs: good | bad-fs | bad-ma")
    parser.add_argument("-n", "--size", type=int, default=0,
                        help="problem size (mini-programs; 0 = default)")
    parser.add_argument("--pattern", default="random",
                        help="bad-ma access pattern (random, strideN)")
    parser.add_argument("--input", default="",
                        help="input set (suite programs, e.g. simsmall)")
    parser.add_argument("--opt", default="-O2",
                        help="optimization level for suite programs")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of tables")
    parser.add_argument("--top", type=int, default=12,
                        help="false-shared lines to show (table output)")
    parser.add_argument("--crosscheck", action="store_true",
                        help="run the mini-program grid through static "
                             "analyzer, shadow oracle and trained tree "
                             "and report disagreements")
    parser.add_argument("--grid-threads", default="2,6",
                        help="thread counts for the --crosscheck grid")
    _add_jobs_option(parser)
    args = parser.parse_args(argv)
    try:
        import json as _json

        from repro.analysis.lint import SharingLinter, render_findings
        from repro.analysis.sharing import StaticSharingAnalyzer

        _apply_jobs(args)
        if args.crosscheck:
            from repro.analysis.crosscheck import CrossChecker, default_grid
            from repro.experiments.context import default_context

            threads = tuple(int(x) for x in
                            args.grid_threads.split(",") if x.strip())
            ctx = default_context()
            checker = CrossChecker(ctx.detector, shadow=ctx.shadow,
                                   engine=ctx.engine)
            report = checker.run(default_grid(threads=threads))
            print(report.to_json(indent=2) if args.json
                  else report.render())
            return 0 if not report.disagreements() else 1
        if not args.workload:
            parser.error("a workload name is required unless --crosscheck")
        target, kind = _resolve_target(args.workload)
        cfg = _build_config(target, kind, args)
        program = target.trace(cfg)
        analyzer = StaticSharingAnalyzer()
        rep = analyzer.analyze(program)
        findings = SharingLinter(analyzer).lint(program, rep)
        if args.json:
            print(_json.dumps(
                {"report": rep.to_dict(),
                 "findings": [f.to_dict() for f in findings]},
                indent=2,
            ))
        else:
            print(rep.render(top=args.top))
            print()
            print(render_findings(findings))
        return 0 if rep.verdict == "good" else 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _add_format_option(p: argparse.ArgumentParser) -> None:
    p.add_argument("--format", choices=("table", "json"), default="table",
                   help="output format (json has stable key order)")


def predict_main(argv: Optional[Sequence[str]] = None) -> int:
    """Trace-free predictive analysis (``repro-analyze predict``)."""
    parser = argparse.ArgumentParser(
        prog="repro-analyze predict",
        description="Predict false sharing from a workload's symbolic "
                    "access plan — no trace is generated.  Runs the "
                    "layout-aware lint rules (FS005..FS008) and, with "
                    "--all, sweeps the full workload registry against a "
                    "committed finding baseline.",
    )
    parser.add_argument("workload", nargs="?", default="",
                        help="mini-program or suite program name "
                             "(omit with --all)")
    parser.add_argument("-t", "--threads", type=int, default=6)
    parser.add_argument("-m", "--mode", default="good",
                        help="mini-programs: good | bad-fs | bad-ma")
    parser.add_argument("-n", "--size", type=int, default=0,
                        help="problem size (mini-programs; 0 = default)")
    parser.add_argument("--pattern", default="random",
                        help="bad-ma access pattern (random, strideN)")
    parser.add_argument("--input", default="",
                        help="input set (suite programs, e.g. simsmall)")
    parser.add_argument("--opt", default="-O2",
                        help="optimization level for suite programs")
    parser.add_argument("--all", action="store_true",
                        help="predict every registry workload at every "
                             "mode (the baseline sweep)")
    parser.add_argument("--grid-threads", type=int, default=4,
                        help="thread count for the --all sweep")
    parser.add_argument("--baseline", default="",
                        help="baseline JSON to suppress known findings "
                             "(e.g. analysis-baseline.json)")
    parser.add_argument("--fail-on-new", action="store_true",
                        help="exit 1 when a finding is not in the "
                             "baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the --baseline file from the "
                             "current findings")
    parser.add_argument("--output", default="",
                        help="also write the full JSON report here")
    _add_format_option(parser)
    args = parser.parse_args(argv)
    try:
        import json as _json

        from repro.analysis.baseline import (
            diff_findings,
            load_baseline,
            save_baseline,
        )
        from repro.analysis.lint import SharingLinter, render_findings
        from repro.analysis.predict import predict_plan

        linter = SharingLinter()
        if args.all:
            from repro.analysis.validate import registry_grid

            grid = registry_grid(threads=args.grid_threads,
                                 pattern=args.pattern)
            preds = [predict_plan(w.plan(cfg)) for w, cfg in grid]
        else:
            if not args.workload:
                parser.error("a workload name is required unless --all")
            target, kind = _resolve_target(args.workload)
            cfg = _build_config(target, kind, args)
            preds = [predict_plan(target.plan(cfg))]
        findings = [f for pred in preds
                    for f in linter.lint_prediction(pred)]
        payload = {
            "cases": [pred.to_dict() for pred in preds],
            "findings": [f.to_dict() for f in findings],
        }
        if args.update_baseline:
            if not args.baseline:
                parser.error("--update-baseline requires --baseline PATH")
            save_baseline(args.baseline, findings)
            print(f"baseline updated: {args.baseline} "
                  f"({len(findings)} finding(s))")
        diff = None
        if args.baseline and not args.update_baseline:
            diff = diff_findings(findings, load_baseline(args.baseline))
            payload["baseline_diff"] = diff.to_dict()
        if args.output:
            with open(args.output, "w") as fh:
                _json.dump(payload, fh, indent=2, sort_keys=True)
        if args.format == "json":
            print(_json.dumps(payload, indent=2, sort_keys=True))
        else:
            if args.all:
                rows = [[pred.plan.scope(), pred.verdict,
                         f"{pred.fs_significance:.2e}",
                         sum(1 for f in findings
                             if f.scope == pred.plan.scope())]
                        for pred in preds]
                print(render_table(
                    ["case", "verdict", "fs significance", "findings"],
                    rows, title="Predictive sweep"))
            else:
                print(preds[0].render())
            print()
            print(render_findings(findings))
            if diff is not None:
                print()
                print(diff.render())
        if diff is not None and args.fail_on_new and not diff.clean:
            return 1
        if not args.all and not args.baseline:
            return 0 if preds[0].verdict == "good" else 1
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def symbols_main(argv: Optional[Sequence[str]] = None) -> int:
    """Workload symbol-table queries (``repro-analyze symbols``)."""
    parser = argparse.ArgumentParser(
        prog="repro-analyze symbols",
        description="Show the address-range symbol table a workload's "
                    "layout produces, or resolve one cache line to its "
                    "named objects.",
    )
    parser.add_argument("workload",
                        help="mini-program or suite program name")
    parser.add_argument("-t", "--threads", type=int, default=6)
    parser.add_argument("-m", "--mode", default="good",
                        help="mini-programs: good | bad-fs | bad-ma")
    parser.add_argument("-n", "--size", type=int, default=0,
                        help="problem size (mini-programs; 0 = default)")
    parser.add_argument("--pattern", default="random",
                        help="bad-ma access pattern (random, strideN)")
    parser.add_argument("--input", default="",
                        help="input set (suite programs, e.g. simsmall)")
    parser.add_argument("--opt", default="-O2",
                        help="optimization level for suite programs")
    parser.add_argument("--line", default="",
                        help="resolve one cache-line index (decimal or "
                             "0x-hex) to its owning objects")
    _add_format_option(parser)
    args = parser.parse_args(argv)
    try:
        import json as _json

        target, kind = _resolve_target(args.workload)
        cfg = _build_config(target, kind, args)
        plan = target.plan(cfg)
        if args.line:
            line = int(args.line, 0)
            owners = plan.symbols.line_owners(line)
            if args.format == "json":
                print(_json.dumps(
                    {"line": line, "address": f"0x{line * 64:x}",
                     "objects": [s.to_dict() for s in owners]},
                    indent=2, sort_keys=True))
            elif owners:
                print(f"line {line} (0x{line * 64:x}):")
                for s in owners:
                    owner = "-" if s.tid is None else f"T{s.tid}"
                    print(f"  {s.name:20s} [{s.kind}] base=0x{s.base:x} "
                          f"size={s.size} owner={owner}")
            else:
                print(f"line {line} (0x{line * 64:x}): no named objects")
            return 0
        if args.format == "json":
            print(_json.dumps(plan.symbols.to_dict(), indent=2,
                              sort_keys=True))
        else:
            print(plan.symbols.render())
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def bench_main(argv: Optional[Sequence[str]] = None) -> int:
    """Pinned benchmark replay + perf-regression gate (``repro-bench``)."""
    from repro.telemetry.bench import bench_main as _bench_main

    return _bench_main(argv)


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    """Online detection service CLI (``repro-serve``)."""
    from repro.serve.cli import serve_main as _serve_main

    return _serve_main(argv)


def results_main(argv: Optional[Sequence[str]] = None) -> int:
    """Durable run store CLI (``repro-results``)."""
    from repro.results.cli import results_main as _results_main

    return _results_main(argv)


_SUBCOMMANDS = {
    "perf": perf_main,
    "train": train_main,
    "detect": detect_main,
    "analyze": analyze_main,
    "bench": bench_main,
    "serve": serve_main,
    "results": results_main,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Umbrella entry point: ``repro <subcommand> ...``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    known = sorted(list(_SUBCOMMANDS) + ["experiment"])
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: repro <%s> ..." % "|".join(known))
        print("run `repro <subcommand> --help` for subcommand options")
        return 0 if argv else 2
    cmd, rest = argv[0], argv[1:]
    if cmd == "experiment":
        return experiment_main(rest)
    fn = _SUBCOMMANDS.get(cmd)
    if fn is None:
        print(f"error: unknown subcommand {cmd!r}; "
              f"expected one of {known}", file=sys.stderr)
        return 2
    return fn(rest)


def experiment_main(argv: Optional[Sequence[str]] = None) -> int:
    """Regenerate paper tables/figures by experiment id."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Re-run the paper's experiments "
                    "(tables 1-11, figure 2, ablations).",
    )
    parser.add_argument("ids", nargs="*",
                        help="experiment ids (default: list them)")
    parser.add_argument("--all", action="store_true", help="run everything")
    parser.add_argument("--results-store", default="",
                        help="ingest ingestable experiment summaries "
                             "(crosscheck, predict-validation) into this "
                             "repro-results store")
    _add_jobs_option(parser)
    args = parser.parse_args(argv)
    from repro.experiments import experiment_ids, run_experiment

    _apply_jobs(args)
    ids: List[str] = args.ids
    if args.all:
        ids = experiment_ids()
    if not ids:
        print("available experiments:")
        for eid in experiment_ids():
            print(f"  {eid}")
        return 0
    try:
        for eid in ids:
            result = run_experiment(eid)
            print(result)
            print()
            if args.results_store and result.data:
                from repro.errors import ResultsError
                from repro.results.schema import classify_payload
                from repro.results.store import ResultsStore

                try:
                    classify_payload(result.data)
                except ResultsError:
                    continue  # not every experiment emits a trendable doc
                with ResultsStore(args.results_store) as store:
                    outcome = store.ingest(result.data, source=eid)
                print(f"results: run #{outcome.run_id} [{outcome.kind}] "
                      f"-> {args.results_store}"
                      + ("" if outcome.fresh else " (deduped)"))
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
