"""Performance-event catalog for the simulated Westmere DP PMU.

``TABLE2_EVENTS`` lists the paper's 16 selected events in Table 2 order, so
"event 11" in the learned tree means exactly what it means in the paper
(``Snoop_Response.HIT "M"``).  ``CANDIDATE_EVENTS`` is the larger list the
selection procedure of Section 2.3 starts from (the paper reports 60-70
candidates on Nehalem EX / Westmere DP); it includes the 16, plus cache/TLB/
stall/offcore events with genuine signal, plus events that scale with
instruction count and must be rejected by the 2x heuristic, plus the
notoriously erratic ``MEM_UNCORE_RETIRED.OTHER_CORE_L2_HITM`` that the paper
expected to help and found useless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import UnknownEventError


@dataclass(frozen=True)
class Event:
    """One countable PMU event.

    ``raw_key`` names the exact counter in ``SimulationResult.counts``;
    ``noise`` is the relative measurement noise of the physical counter
    (L1D events are markedly noisier — the paper calls this out and cites
    Levinthal's caution); ``erratic`` marks events with hardware errata whose
    counts are dominated by unrelated traffic.
    """

    name: str
    code: int
    umask: int
    raw_key: str
    noise: float = 0.03
    erratic: bool = False
    description: str = ""

    @property
    def selector(self) -> str:
        """perf-style event selector string."""
        return f"r{self.umask:02X}{self.code:02X}"


def _ev(name, code, umask, raw_key, noise=0.03, erratic=False, description=""):
    return Event(name, code, umask, raw_key, noise, erratic, description)


#: The 16 events of Table 2, in the paper's order.  Index i in this list is
#: "event i+1" in the paper's numbering (the tree in Figure 2 uses 11/6/14/13).
TABLE2_EVENTS: List[Event] = [
    _ev("L2_Data_Requests.Demand.I_state", 0x26, 0x01,
        "L2_DATA_RQSTS.DEMAND.I_STATE",
        description="L2 demand data requests that found the line Invalid"),
    _ev("L2_Write.RFO.S_state", 0x27, 0x02, "L2_WRITE.RFO.S_STATE",
        description="Store RFOs that hit the line in Shared state"),
    _ev("L2_Requests.LD_MISS", 0x24, 0x02, "L2_RQSTS.LD_MISS",
        description="Load requests that missed L2"),
    _ev("Resource_Stalls.Store", 0xA2, 0x08, "RESOURCE_STALLS.STORE",
        description="Cycles stalled on a full store buffer"),
    _ev("Offcore_Requests.Demand_RD_Data", 0xB0, 0x01,
        "OFFCORE_REQUESTS.DEMAND.READ_DATA",
        description="Demand data reads that left the core"),
    _ev("L2_Transactions.FILL", 0xF0, 0x20, "L2_TRANSACTIONS.FILL",
        description="Lines filled into L2"),
    _ev("L2_Lines_In.S_state", 0xF1, 0x02, "L2_LINES_IN.S_STATE",
        description="Lines allocated into L2 in Shared state"),
    _ev("L2_Lines_Out.Demand_Clean", 0xF2, 0x01, "L2_LINES_OUT.DEMAND_CLEAN",
        description="Clean lines evicted from L2 by demand traffic"),
    _ev("Snoop_Response.HIT", 0xB8, 0x01, "SNOOP_RESPONSE.HIT",
        description="Snoops answered HIT (line Shared, clean)"),
    _ev("Snoop_Response.HIT_E", 0xB8, 0x02, "SNOOP_RESPONSE.HITE",
        description="Snoops answered HIT with line Exclusive"),
    _ev("Snoop_Response.HIT_M", 0xB8, 0x04, "SNOOP_RESPONSE.HITM",
        description="Snoops answered HIT with line Modified "
                    "(dirty cache-to-cache transfer: the false-sharing event)"),
    _ev("Mem_Load_Retd.HIT_LFB", 0xCB, 0x40, "MEM_LOAD_RETIRED.HIT_LFB",
        description="Loads that hit a pending line-fill buffer"),
    _ev("DTLB_Misses", 0x49, 0x01, "DTLB_MISSES.ANY",
        description="First-level DTLB misses"),
    _ev("L1D_Cache_Replacements", 0x51, 0x01, "L1D.REPL", noise=0.06,
        description="Lines brought into L1D"),
    _ev("Resource_Stalls.Loads", 0xA2, 0x02, "RESOURCE_STALLS.LOAD",
        description="Cycles stalled waiting on loads"),
    _ev("Instructions_Retired", 0xC0, 0x00, "INST_RETIRED.ANY", noise=0.002,
        description="Retired instructions (the normalizer)"),
]

#: Unhalted cycles: a fixed counter used for timing/overhead accounting.
#: Like Instructions_Retired it is not an event-selection candidate — it
#: measures elapsed time, not a memory-behaviour signature.
CLOCK_EVENT: Event = _ev(
    "CPU_Clk_Unhalted.Core", 0x3C, 0x00, "CPU_CLK_UNHALTED.CORE", 0.01,
    description="Unhalted core cycles",
)

#: Candidate events beyond Table 2 (the Section 2.3 starting list).
EXTRA_CANDIDATES: List[Event] = [
    _ev("Mem_Inst_Retired.Loads", 0x0B, 0x01, "MEM_INST_RETIRED.LOADS", 0.01),
    _ev("Mem_Inst_Retired.Stores", 0x0B, 0x02, "MEM_INST_RETIRED.STORES", 0.01),
    _ev("L1D_Cache_LD", 0x40, 0x01, "L1D_CACHE_LD", noise=0.28,
        description="L1D load references (noisy counter)"),
    _ev("L1D_Cache_ST", 0x41, 0x01, "L1D_CACHE_ST", noise=0.28,
        description="L1D store references (noisy counter)"),
    _ev("Mem_Load_Retired.L1D_Hit", 0xCB, 0x01, "MEM_LOAD_RETIRED.L1D_HIT", 0.22),
    _ev("Mem_Load_Retired.L2_Hit", 0xCB, 0x02, "MEM_LOAD_RETIRED.L2_HIT", 0.05),
    _ev("Mem_Load_Retired.LLC_Hit", 0xCB, 0x04, "MEM_LOAD_RETIRED.LLC_HIT", 0.05),
    _ev("Mem_Load_Retired.LLC_Miss", 0xCB, 0x10, "MEM_LOAD_RETIRED.LLC_MISS", 0.05),
    _ev("L2_Rqsts.LD_Hit", 0x24, 0x01, "L2_RQSTS.LD_HIT", 0.04),
    _ev("L2_Rqsts.RFO_Hit", 0x24, 0x04, "L2_RQSTS.RFO_HIT", 0.04),
    _ev("L2_Rqsts.RFO_Miss", 0x24, 0x08, "L2_RQSTS.RFO_MISS", 0.04),
    _ev("L2_Lines_In.E_state", 0xF1, 0x04, "L2_LINES_IN.E_STATE", 0.04),
    _ev("L2_Lines_In.Any", 0xF1, 0x07, "L2_LINES_IN.ANY", 0.04),
    _ev("L2_Lines_Out.Demand_Dirty", 0xF2, 0x02, "L2_LINES_OUT.DEMAND_DIRTY", 0.04),
    _ev("L2_Writebacks", 0xF0, 0x10, "L2_WRITEBACKS", 0.04),
    _ev("Offcore_Requests.Demand_RFO", 0xB0, 0x02,
        "OFFCORE_REQUESTS.DEMAND.RFO", 0.03),
    _ev("Offcore_Requests.Any", 0xB0, 0x80, "OFFCORE_REQUESTS.ANY", 0.03),
    _ev("Longest_Lat_Cache.Reference", 0x2E, 0x4F,
        "LONGEST_LAT_CACHE.REFERENCE", 0.03),
    _ev("Longest_Lat_Cache.Miss", 0x2E, 0x41, "LONGEST_LAT_CACHE.MISS", 0.03),
    _ev("Resource_Stalls.Any", 0xA2, 0x01, "RESOURCE_STALLS.ANY", 0.03),
    _ev("Mem_Store_Retired.DTLB_Miss", 0x0C, 0x01,
        "MEM_STORE_RETIRED.DTLB_MISS", 0.05),
    _ev("DTLB_Load_Misses.Any", 0x08, 0x01, "DTLB_LOAD_MISSES.ANY", 0.05),
    _ev("DTLB_Misses.Walk_Cycles", 0x49, 0x04, "DTLB_MISSES.WALK_CYCLES", 0.05),
    _ev("ITLB_Misses.Any", 0x85, 0x01, "ITLB_MISSES.ANY", 0.10),
    _ev("L1D_Prefetch.Requests", 0x4E, 0x02, "L1D_PREFETCH.REQUESTS", 0.08),
    _ev("Br_Inst_Retired.All_Branches", 0xC4, 0x00,
        "BR_INST_RETIRED.ALL_BRANCHES", 0.01,
        description="Scales with instructions; carries no memory signal"),
    _ev("Br_Misp_Retired.All_Branches", 0xC5, 0x00,
        "BR_MISP_RETIRED.ALL_BRANCHES", 0.05),
    _ev("Uops_Retired.Any", 0xC2, 0x01, "UOPS_RETIRED.ANY", 0.01),
    _ev("Uops_Issued.Any", 0x0E, 0x01, "UOPS_ISSUED.ANY", 0.01),
    _ev("FP_Comp_Ops_Exe.SSE_FP", 0x10, 0x04, "FP_COMP_OPS_EXE.SSE_FP", 0.02),
    _ev("Arith.Cycles_Div_Busy", 0x14, 0x01, "ARITH.CYCLES_DIV_BUSY", 0.05),
    _ev("Machine_Clears.Cycles", 0xC3, 0x01, "MACHINE_CLEARS.CYCLES", 0.10),
    _ev("Load_Dispatch.Any", 0x13, 0x07, "LOAD_DISPATCH.ANY", 0.03),
    _ev("SQ_Misc.Fill_Dropped", 0xF4, 0x04, "SQ_MISC.FILL_DROPPED", 0.15),
    _ev("Memory_Uncore_Retired.Other_core_L2_HITM", 0x0F, 0x02,
        "MEM_UNCORE_RETIRED.OTHER_CORE_L2_HITM", noise=0.30, erratic=True,
        description="Remote-HITM loads; Westmere erratum makes its counts "
                    "dominated by unrelated load traffic (paper Section 2.3 "
                    "found it useless despite expectations)"),
]

CANDIDATE_EVENTS: List[Event] = TABLE2_EVENTS + EXTRA_CANDIDATES

#: Every event the library knows about (candidates + fixed counters).
ALL_EVENTS: List[Event] = CANDIDATE_EVENTS + [CLOCK_EVENT]

_BY_NAME: Dict[str, Event] = {e.name: e for e in ALL_EVENTS}
_BY_RAW: Dict[str, Event] = {e.raw_key: e for e in ALL_EVENTS}
_BY_CODE: Dict[Tuple[int, int], Event] = {
    (e.code, e.umask): e for e in ALL_EVENTS
}

#: Event used to normalize all others (event 16 of Table 2).
NORMALIZER: Event = TABLE2_EVENTS[15]


def event_by_name(name: str) -> Event:
    """Look up an event by its human-readable name (case-insensitive)."""
    e = _BY_NAME.get(name)
    if e is None:
        for cand in ALL_EVENTS:
            if cand.name.lower() == name.lower():
                return cand
        raise UnknownEventError(f"unknown event name: {name!r}")
    return e


def event_by_raw_key(raw_key: str) -> Event:
    """Look up an event by its raw simulator counter key."""
    try:
        return _BY_RAW[raw_key]
    except KeyError:
        raise UnknownEventError(f"unknown raw counter: {raw_key!r}") from None


def event_by_code(code: int, umask: int) -> Event:
    """Look up an event by its (event code, umask) pair, as in Table 2."""
    try:
        return _BY_CODE[(code, umask)]
    except KeyError:
        raise UnknownEventError(
            f"unknown event code {code:02X}/{umask:02X}"
        ) from None


def event_number(event: Event) -> Optional[int]:
    """The paper's 1-based Table 2 index, or None for non-Table-2 events."""
    for i, e in enumerate(TABLE2_EVENTS):
        if e.name == event.name:
            return i + 1
    return None


def feature_events() -> List[Event]:
    """The 15 events used as classifier features (Table 2 minus normalizer)."""
    return TABLE2_EVENTS[:15]
