"""Event-count vectors and normalization.

The classifier never sees absolute counts: every event is divided by
``Instructions_Retired`` (paper Section 2.3, last paragraph of the event
discussion), making counts from different programs and problem sizes
comparable.  :class:`EventVector` holds one measurement and produces the
normalized feature vector in Table 2 order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import PMUError
from repro.pmu.events import NORMALIZER, Event


@dataclass
class EventVector:
    """Measured counts for a set of events from one program run."""

    values: Dict[str, float]
    overhead: float = 0.0
    meta: Dict[str, object] = field(default_factory=dict)

    def count(self, event: Event) -> float:
        try:
            return self.values[event.name]
        except KeyError:
            raise PMUError(f"event {event.name!r} was not measured") from None

    @property
    def instructions(self) -> float:
        return self.count(NORMALIZER)

    def normalized(self, event: Event) -> float:
        """Count of ``event`` per retired instruction."""
        instr = self.instructions
        if instr <= 0:
            raise PMUError("zero instructions retired; cannot normalize")
        return self.count(event) / instr

    def features(self, events: Sequence[Event]) -> np.ndarray:
        """Normalized counts for ``events``, as a float vector."""
        return np.array([self.normalized(e) for e in events], dtype=float)


def feature_matrix(
    vectors: Sequence[EventVector], events: Sequence[Event]
) -> np.ndarray:
    """Stack many measurements into an (n_samples, n_events) matrix."""
    if not vectors:
        return np.empty((0, len(events)), dtype=float)
    return np.vstack([v.features(events) for v in vectors])


def feature_names(events: Sequence[Event]) -> List[str]:
    """Column names matching :func:`feature_matrix`."""
    return [e.name for e in events]


def merge_vectors(a: EventVector, b: EventVector) -> EventVector:
    """Combine two measurements of disjoint event sets from the same run."""
    dup = set(a.values) & set(b.values)
    if dup:
        raise PMUError(f"events measured twice: {sorted(dup)}")
    vals = dict(a.values)
    vals.update(b.values)
    return EventVector(vals, overhead=max(a.overhead, b.overhead),
                       meta={**a.meta, **b.meta})


def require_events(vector: EventVector, events: Sequence[Event]) -> None:
    """Raise PMUError unless every event was measured."""
    missing = [e.name for e in events if e.name not in vector.values]
    if missing:
        raise PMUError(f"measurement is missing events: {missing}")
