"""Reading events off the simulated PMU: multiplexing, noise, overhead.

Westmere exposes 4 fully-programmable counters per core.  Measuring the 16
Table 2 events therefore requires time-multiplexing: each event is live for
a fraction of the run and its count is extrapolated, adding sampling error
on top of intrinsic counter noise.  The model here reproduces the properties
the paper leans on:

* counting overhead is tiny (< 2 % even with full rotation) — the paper's
  headline practicality claim;
* noisy counters (L1D loads/stores) have large relative error;
* the erratic ``MEM_UNCORE_RETIRED.OTHER_CORE_L2_HITM`` counter's value is
  dominated by unrelated load traffic, so it fails the 2x selection test.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

from repro.coherence.machine import SimulationResult
from repro.errors import PMUError
from repro.pmu.counters import EventVector
from repro.pmu.events import Event
from repro.utils.rng import rng_for

#: Programmable general-purpose counters per core on Westmere.
PROGRAMMABLE_COUNTERS = 4

#: Fixed counters (instructions, cycles, ref-cycles) that never multiplex.
_FIXED_KEYS = {"INST_RETIRED.ANY", "CPU_CLK_UNHALTED.CORE"}

#: Relative extra noise per multiplexing rotation group beyond the first.
_MUX_NOISE = 0.015

#: Per-event-group overhead fraction of run time (counter rotation + reads).
_GROUP_OVERHEAD = 0.0016
_BASE_OVERHEAD = 0.0018


class PMUSampler:
    """Samples event counts from a finished simulation run."""

    def __init__(
        self,
        counters: int = PROGRAMMABLE_COUNTERS,
        seed: int = 0,
        noisy: bool = True,
    ) -> None:
        if counters <= 0:
            raise PMUError("need at least one programmable counter")
        self.counters = counters
        self.seed = seed
        self.noisy = noisy

    def measure(
        self,
        result: SimulationResult,
        events: Sequence[Event],
        run_id: Optional[str] = None,
    ) -> EventVector:
        """Read ``events`` for one run; returns a noisy :class:`EventVector`.

        ``run_id`` keys the noise draw so repeated measurements of the same
        run differ, as on real hardware, but the whole pipeline stays
        reproducible.
        """
        if not events:
            raise PMUError("no events requested")
        names = [e.name for e in events]
        if len(set(names)) != len(names):
            raise PMUError("duplicate events in request")

        rng = rng_for("pmu", self.seed, result.name, run_id or "")
        mux_groups = self._rotation_groups(events)
        values = {}
        loads = result.counts.get("MEM_INST_RETIRED.LOADS", 0.0)
        for event, group in zip(events, mux_groups):
            true = result.counts.get(event.raw_key, 0.0)
            if event.erratic:
                # Erratum model: the counter mostly counts unrelated loads;
                # only a sliver of the architectural event leaks through, so
                # good-vs-bad ratios collapse toward 1 and the 2x selection
                # rejects it (paper Section 2.3's negative finding).
                true = 0.001 * true + 1.5e-3 * loads
            if self.noisy:
                sigma = event.noise + (_MUX_NOISE * group if group else 0.0)
                factor = float(np.exp(rng.normal(0.0, sigma)))
                # Additive floor: idle-loop and kernel activity leak a few
                # counts into every event, so zero never measures as zero.
                floor = rng.uniform(0.0, 2e-7) * max(
                    result.counts.get("INST_RETIRED.ANY", 0.0), 1.0
                )
                values[event.name] = true * factor + floor
            else:
                values[event.name] = true
        overhead = self.overhead_fraction(events)
        return EventVector(values, overhead=overhead,
                           meta={"run": result.name, **result.meta})

    def measure_stream(
        self,
        result: SimulationResult,
        events: Sequence[Event],
        windows: int = 10,
        run_id: Optional[str] = None,
        source: Optional[str] = None,
        t0: float = 0.0,
    ) -> Iterator[EventVector]:
        """Read ``events`` as ``windows`` periodic samples over the run.

        The online-monitoring view of :meth:`measure`: instead of one
        whole-run reading, the run's counts are split across ``windows``
        equal time slices, each read through the same rotation-group and
        noise model (every window pays its own multiplexing extrapolation
        error, as a real periodic reader would).  Each yielded
        :class:`EventVector` carries ``meta['t']`` (the sample time, at the
        window's end), ``meta['t_start']``/``meta['t_end']``,
        ``meta['window']`` and ``meta['source']`` — exactly the shape
        :class:`repro.serve.stream.WindowAggregator` ingests.

        With ``noisy=False`` the split is exact, so the window counts sum
        to :meth:`measure`'s noiseless reading.  The noise draw is keyed on
        (seed, run, run_id, window), so streams are reproducible and two
        ``run_id``\\ s give independent streams of the same run.
        """
        if windows < 1:
            raise PMUError("need at least one window")
        if not events:
            raise PMUError("no events requested")
        names = [e.name for e in events]
        if len(set(names)) != len(names):
            raise PMUError("duplicate events in request")
        mux_groups = self._rotation_groups(events)
        overhead = self.overhead_fraction(events)
        seconds = max(float(getattr(result, "seconds", 0.0)), 0.0)
        dt = (seconds / windows) if seconds > 0 else 1.0 / windows
        src = source if source is not None else result.name
        loads = result.counts.get("MEM_INST_RETIRED.LOADS", 0.0)
        instr = max(result.counts.get("INST_RETIRED.ANY", 0.0), 1.0)
        for w in range(windows):
            rng = rng_for("pmu-stream", self.seed, result.name,
                          run_id or "", w)
            values = {}
            for event, group in zip(events, mux_groups):
                true = result.counts.get(event.raw_key, 0.0)
                if event.erratic:
                    true = 0.001 * true + 1.5e-3 * loads
                true /= windows
                if self.noisy:
                    sigma = event.noise + (_MUX_NOISE * group if group else 0.0)
                    factor = float(np.exp(rng.normal(0.0, sigma)))
                    floor = rng.uniform(0.0, 2e-7) * instr / windows
                    values[event.name] = true * factor + floor
                else:
                    values[event.name] = true
            yield EventVector(
                values,
                overhead=overhead,
                meta={
                    "run": result.name,
                    "source": src,
                    "window": w,
                    "t_start": t0 + w * dt,
                    "t_end": t0 + (w + 1) * dt,
                    "t": t0 + (w + 1) * dt,
                    **result.meta,
                },
            )

    def overhead_fraction(self, events: Sequence[Event]) -> float:
        """Fraction of run time added by counting these events."""
        groups = self._n_groups(events)
        return _BASE_OVERHEAD + _GROUP_OVERHEAD * groups

    def _n_groups(self, events: Sequence[Event]) -> int:
        programmable = sum(1 for e in events if e.raw_key not in _FIXED_KEYS)
        return max(1, -(-programmable // self.counters))

    def _rotation_groups(self, events: Sequence[Event]) -> list:
        """Group index per event (fixed counters are always group 0)."""
        groups = []
        k = 0
        for e in events:
            if e.raw_key in _FIXED_KEYS:
                groups.append(0)
            else:
                groups.append(k // self.counters)
                k += 1
        return groups


def measure_run(
    result: SimulationResult,
    events: Sequence[Event],
    seed: int = 0,
    run_id: Optional[str] = None,
    noisy: bool = True,
) -> EventVector:
    """One-shot convenience: sample ``events`` from ``result``."""
    return PMUSampler(seed=seed, noisy=noisy).measure(result, events, run_id)
