"""PMU model: event catalog, counter vectors, sampling with noise."""

from repro.pmu.counters import (
    EventVector,
    feature_matrix,
    feature_names,
    merge_vectors,
    require_events,
)
from repro.pmu.events import (
    ALL_EVENTS,
    CANDIDATE_EVENTS,
    CLOCK_EVENT,
    NORMALIZER,
    TABLE2_EVENTS,
    Event,
    event_by_code,
    event_by_name,
    event_by_raw_key,
    event_number,
    feature_events,
)
from repro.pmu.sampler import PROGRAMMABLE_COUNTERS, PMUSampler, measure_run

__all__ = [
    "EventVector",
    "feature_matrix",
    "feature_names",
    "merge_vectors",
    "require_events",
    "ALL_EVENTS",
    "CANDIDATE_EVENTS",
    "CLOCK_EVENT",
    "NORMALIZER",
    "TABLE2_EVENTS",
    "Event",
    "event_by_code",
    "event_by_name",
    "event_by_raw_key",
    "event_number",
    "feature_events",
    "PROGRAMMABLE_COUNTERS",
    "PMUSampler",
    "measure_run",
]
