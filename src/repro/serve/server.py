"""Asyncio JSON-lines TCP server for online false-sharing detection.

One JSON object per line in, one per line out, responses in request order
per connection.  Requests:

* ``{"op": "classify", "id": 7, "features": [..15 floats..]}`` — classify
  a pre-normalized feature vector;
* ``{"op": "classify", "id": 7, "counts": {event: raw_count, ...}}`` —
  classify raw counts (normalized server-side; must include the
  ``Instructions_Retired`` normalizer);
* ``{"op": "classify", "id": 7, "source": "pid-4", "n": 64,
  "batch": [[..15 floats..], ...]}`` — classify a whole batch of
  vectors in one line (the fleet tier's framing: per-vector JSON and
  socket overhead amortize across the batch; ``n`` must match the batch
  length and ``source`` tags the stream for routing/aggregation, both
  optional on a direct connection);
* ``{"op": "ping"}`` / ``{"op": "stats"}`` — liveness and counters;
* ``{"op": "reload", "path": "model.json"}`` — hot-swap the tree from a
  :mod:`repro.ml.persistence` file without dropping connections.

Replies: ``{"id": 7, "label": "bad-fs"}`` on success (batch requests get
``{"id": 7, "labels": [...], "n": ...}`` plus the echoed ``source``);
``{"id": 7, "error": "overloaded"}`` when the bounded request queue is
full (explicit shed — the server never buffers without bound);
``{"error": "bad_request", "detail": ...}`` for malformed input.

**Micro-batching.**  Classification requests land in a bounded queue; a
single batcher task drains up to ``max_batch`` of them (waiting at most
``max_wait_s`` for stragglers) and classifies the whole batch with one
:meth:`~repro.serve.inference.CompiledTree.predict_batch` call.  Under
load, batches grow toward ``max_batch`` and per-request cost approaches
the vectorized floor; when idle, a lone request pays at most
``max_wait_s`` of extra latency.

**Shutdown.**  :meth:`DetectionServer.stop` stops accepting, lets the
batcher drain everything already queued (every accepted request gets its
response), then closes connections — in-flight work is flushed, not
dropped.

The hot path is instrumented with :mod:`repro.telemetry` counters/gauges
(``serve.requests``, ``serve.shed``, ``serve.batches``,
``serve.queue_depth``, ``serve.batch_size``) and a ``serve.batch`` span.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import PMUError, ReproError, ServeError
from repro.pmu.counters import EventVector
from repro.serve.inference import CompiledTree, as_compiled
from repro.telemetry.core import TELEMETRY

__all__ = ["DetectionServer", "ServerThread", "STREAM_LIMIT"]

#: Per-line buffer limit for every serve-tier stream (server accept,
#: router accept, router->worker links).  A 1024-vector batch line of
#: full-precision floats is ~0.4 MiB; 16 MiB leaves an order of
#: magnitude of headroom without letting one client buffer unboundedly.
STREAM_LIMIT = 16 * 1024 * 1024

#: Sentinel queued by ``stop`` so the batcher exits after draining
#: everything enqueued before shutdown began.
_STOP = object()


class _Pending:
    """One accepted classification request awaiting its batch.

    ``features`` is one vector (1-d) for a single request or a matrix
    (2-d) for a batched one; the future resolves to a ``str`` or a
    ``List[str]`` respectively.
    """

    __slots__ = ("features", "future")

    def __init__(self, features: np.ndarray,
                 future: "asyncio.Future") -> None:
        self.features = features
        self.future = future

    @property
    def rows(self) -> int:
        return self.features.shape[0] if self.features.ndim == 2 else 1


class DetectionServer:
    """Online detector: compiled tree + bounded queue + micro-batcher.

    ``model`` is anything :func:`repro.serve.inference.as_compiled`
    accepts: a :class:`CompiledTree`, a fitted ``C45Classifier``, a bare
    tree, or a path to a persisted model JSON.
    """

    def __init__(
        self,
        model,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 256,
        max_wait_s: float = 0.002,
        backlog: int = 4096,
        features: Optional[List] = None,
    ) -> None:
        if max_batch < 1:
            raise ServeError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ServeError("max_wait_s must be >= 0")
        if backlog < 1:
            raise ServeError("backlog must be >= 1")
        self._compiled: CompiledTree = as_compiled(model)
        self.host = host
        self.port = port
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.backlog = backlog
        if features is None:
            from repro.core.training import FEATURES

            features = list(FEATURES)
        self.features = features
        # Lifecycle / hot-path state (created on start()).
        self._queue: Optional[asyncio.Queue] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._batch_task: Optional[asyncio.Task] = None
        self._resume: Optional[asyncio.Event] = None
        self._writers: set = set()
        self._accepting = False
        # Counters (mirrored into telemetry when enabled).  ``requests``
        # and ``shed`` count protocol lines; ``classified`` and
        # ``vectors_shed`` count vectors (a batch line carries many).
        self.requests = 0
        self.shed = 0
        self.vectors_shed = 0
        self.batches = 0
        self.classified = 0
        self.reloads = 0
        self.max_seen_batch = 0

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        if self._server is not None:
            raise ServeError("server already started")
        self._queue = asyncio.Queue(maxsize=self.backlog)
        self._resume = asyncio.Event()
        self._resume.set()
        # Batch-framed lines (hundreds of float vectors) far exceed the
        # asyncio default 64 KiB line limit.
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=STREAM_LIMIT,
        )
        # Only after a successful bind: a failed start must not leave an
        # orphaned batcher task behind on the loop.
        self._batch_task = asyncio.create_task(self._batch_loop())
        self._accepting = True
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: stop accepting, drain, then close.

        With ``drain=True`` (default) every request accepted before the
        call gets a real response; ``drain=False`` fails queued work with
        a ``shutdown`` error instead.
        """
        if self._server is None:
            return
        self._accepting = False
        self._server.close()
        await self._server.wait_closed()
        assert self._queue is not None and self._batch_task is not None
        if drain:
            self._resume.set()  # a paused batcher must still drain
            await self._queue.put(_STOP)
            await self._batch_task
        else:
            self._batch_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._batch_task
            while not self._queue.empty():
                item = self._queue.get_nowait()
                if item is not _STOP and not item.future.done():
                    item.future.set_exception(ServeError("server shut down"))
        for writer in list(self._writers):
            writer.close()
        self._server = None
        self._batch_task = None

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI's foreground mode)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    # -------------------------------------------------- test / ops controls

    def pause_batching(self) -> None:
        """Hold the batcher (tests: deterministically fill the queue)."""
        if self._resume is not None:
            self._resume.clear()

    def resume_batching(self) -> None:
        if self._resume is not None:
            self._resume.set()

    def reload_model(self, model) -> CompiledTree:
        """Atomically swap the compiled tree (in-flight batches finish on
        the old one)."""
        compiled = as_compiled(model)
        self._compiled = compiled
        self.reloads += 1
        TELEMETRY.count("serve.reloads")
        return compiled

    def stats(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "classified": self.classified,
            "shed": self.shed,
            "vectors_shed": self.vectors_shed,
            "batches": self.batches,
            "max_batch_seen": self.max_seen_batch,
            "reloads": self.reloads,
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "accepting": self._accepting,
            "model": {
                "nodes": self._compiled.n_nodes,
                "leaves": self._compiled.n_leaves,
                "classes": list(self._compiled.classes),
            },
            "config": {
                "max_batch": self.max_batch,
                "max_wait_ms": self.max_wait_s * 1e3,
                "backlog": self.backlog,
            },
        }

    # ------------------------------------------------------------ admission

    def submit(self, features: np.ndarray) -> Optional["asyncio.Future"]:
        """Queue one vector (1-d) or one batch of vectors (2-d).

        Returns the future resolving to the label (or list of labels),
        or ``None`` when the bounded queue is full — the caller must
        translate that into an explicit ``overloaded`` response
        (shedding beats unbounded buffering: the client learns *now*
        that it must back off).
        """
        if self._queue is None:
            raise ServeError("server is not started")
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        pending = _Pending(features, fut)
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            self.shed += 1
            self.vectors_shed += pending.rows
            TELEMETRY.count("serve.shed")
            return None
        self.requests += 1
        TELEMETRY.count("serve.requests")
        return fut

    # ------------------------------------------------------------- batching

    async def _batch_loop(self) -> None:
        assert self._queue is not None and self._resume is not None
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is _STOP:
                return
            # Paused (tests/ops): hold this item until resumed; everything
            # behind it stays queued, so a full queue sheds deterministically.
            await self._resume.wait()
            batch: List[_Pending] = [first]
            stopping = False
            deadline = loop.time() + self.max_wait_s
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    # Under sustained load the queue refills while a batch
                    # is classified; take whatever is ready without waiting.
                    while (len(batch) < self.max_batch
                           and not self._queue.empty()):
                        item = self._queue.get_nowait()
                        if item is _STOP:
                            stopping = True
                            break
                        batch.append(item)
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(),
                                                  remaining)
                except asyncio.TimeoutError:
                    break
                if item is _STOP:
                    stopping = True
                    break
                batch.append(item)
            self._classify_batch(batch)
            if stopping:
                await self._drain_rest()
                return

    async def _drain_rest(self) -> None:
        """Classify everything left after _STOP (enqueued concurrently)."""
        assert self._queue is not None
        batch: List[_Pending] = []
        while not self._queue.empty():
            item = self._queue.get_nowait()
            if item is _STOP:
                continue
            batch.append(item)
            if len(batch) >= self.max_batch:
                self._classify_batch(batch)
                batch = []
        if batch:
            self._classify_batch(batch)

    def _classify_batch(self, batch: List[_Pending]) -> None:
        if not batch:
            return
        compiled = self._compiled
        rows = sum(p.rows for p in batch)
        if len(batch) == 1:
            X = np.atleast_2d(batch[0].features)
        else:
            X = np.vstack([np.atleast_2d(p.features) for p in batch])
        with TELEMETRY.span("serve.batch", size=rows):
            labels = compiled.predict_batch(X)
        offset = 0
        for pending in batch:
            k = pending.rows
            if not pending.future.done():
                if pending.features.ndim == 2:
                    pending.future.set_result(
                        [str(v) for v in labels[offset:offset + k]]
                    )
                else:
                    pending.future.set_result(str(labels[offset]))
            offset += k
        self.batches += 1
        self.classified += rows
        self.max_seen_batch = max(self.max_seen_batch, rows)
        TELEMETRY.count("serve.batches")
        TELEMETRY.count("serve.classified", rows)
        TELEMETRY.observe("serve.batch_size", rows)
        TELEMETRY.gauge("serve.batch_size", rows)
        TELEMETRY.gauge("serve.queue_depth",
                        self._queue.qsize() if self._queue else 0)

    # ----------------------------------------------------------- connections

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        # Responses go through a per-connection FIFO drained by one writer
        # task: the read loop never blocks on classification (so one
        # connection can keep a whole batch in flight) while responses stay
        # in request order.
        responses: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.create_task(
            self._write_loop(responses, writer)
        )
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                await responses.put(self._dispatch(line))
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            await responses.put(None)
            with contextlib.suppress(Exception):
                await writer_task
            self._writers.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()

    async def _write_loop(
        self, responses: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            item = await responses.get()
            if item is None:
                return
            if isinstance(item, tuple):  # (request id, future, source)
                rid, fut, source = item
                try:
                    result = await fut
                    if isinstance(result, list):
                        payload = {"id": rid, "labels": result,
                                   "n": len(result)}
                        if source is not None:
                            payload["source"] = source
                    else:
                        payload = {"id": rid, "label": result}
                except ServeError as exc:
                    payload = {"id": rid, "error": "shutdown",
                               "detail": str(exc)}
                except asyncio.CancelledError:
                    payload = {"id": rid, "error": "shutdown"}
            else:
                payload = item
            try:
                writer.write(json.dumps(payload).encode() + b"\n")
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                return

    # -------------------------------------------------------------- protocol

    def _dispatch(self, line: bytes):
        """Parse one request line; returns a payload dict or (id, future)."""
        try:
            req = json.loads(line)
        except json.JSONDecodeError as exc:
            return {"error": "bad_request", "detail": f"invalid JSON: {exc}"}
        if not isinstance(req, dict):
            return {"error": "bad_request", "detail": "expected an object"}
        op = req.get("op", "classify")
        rid = req.get("id")
        if op == "ping":
            return {"id": rid, "ok": True, "server": "repro-serve"}
        if op == "stats":
            return {"id": rid, "stats": self.stats()}
        if op == "reload":
            return self._handle_reload(req, rid)
        if op != "classify":
            return {"id": rid, "error": "bad_request",
                    "detail": f"unknown op {op!r}"}
        if not self._accepting:
            return {"id": rid, "error": "shutdown"}
        try:
            features = self._extract_features(req)
        except (ServeError, PMUError) as exc:
            return {"id": rid, "error": "bad_request", "detail": str(exc)}
        fut = self.submit(features)
        if fut is None:
            return {"id": rid, "error": "overloaded",
                    "detail": "request queue full; back off and retry"}
        source = req.get("source")
        return (rid, fut, str(source) if source is not None else None)

    def _handle_reload(self, req: Dict, rid) -> Dict[str, Any]:
        path = req.get("path")
        if not path:
            return {"id": rid, "error": "bad_request",
                    "detail": "reload requires a 'path'"}
        try:
            compiled = self.reload_model(path)
        except (ReproError, OSError) as exc:
            return {"id": rid, "error": "reload_failed", "detail": str(exc)}
        return {"id": rid, "reloaded": True, "nodes": compiled.n_nodes,
                "classes": list(compiled.classes)}

    def _extract_features(self, req: Dict) -> np.ndarray:
        if "batch" in req:
            batch = req["batch"]
            if not isinstance(batch, list) or not batch:
                raise ServeError("'batch' must be a non-empty list of "
                                 "feature vectors")
            feats = np.asarray(batch, dtype=float)
            if feats.ndim != 2 or feats.shape[1] != len(self.features):
                raise ServeError(
                    f"'batch' must be a list of {len(self.features)}-float "
                    "vectors"
                )
            n = req.get("n")
            if n is not None and int(n) != feats.shape[0]:
                raise ServeError(
                    f"'n' ({n}) does not match batch length "
                    f"({feats.shape[0]})"
                )
            return feats
        if "features" in req:
            feats = np.asarray(req["features"], dtype=float)
            if feats.ndim != 1 or feats.size != len(self.features):
                raise ServeError(
                    f"'features' must be a flat list of "
                    f"{len(self.features)} floats"
                )
            return feats
        if "counts" in req:
            counts = req["counts"]
            if not isinstance(counts, dict):
                raise ServeError("'counts' must be an object of raw counts")
            vec = EventVector(
                {str(k): float(v) for k, v in counts.items()}
            )
            return vec.features(self.features)
        raise ServeError("classify requires 'features' or 'counts'")


class ServerThread:
    """A :class:`DetectionServer` on a private event loop in a thread.

    Synchronous code (the CLI, the load generator, tests, experiments)
    uses this to run the asyncio server in the background::

        with ServerThread(model) as (host, port):
            client = ServeClient(host, port)
            ...
    """

    def __init__(self, model, **kwargs) -> None:
        self.server = DetectionServer(model, **kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.address: Optional[Tuple[str, int]] = None

    def start(self) -> Tuple[str, int]:
        if self._thread is not None:
            raise ServeError("server thread already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise ServeError("server thread failed to start")
        if self._startup_error is not None:
            raise ServeError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        assert self.address is not None
        return self.address

    def _run(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        try:
            self.address = self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
            self._started.set()
            self._loop.close()
            return
        self._started.set()
        self._loop.run_forever()
        # Drain callbacks scheduled during stop() before closing the loop.
        self._loop.run_until_complete(asyncio.sleep(0))
        self._loop.close()

    def pause_batching(self) -> None:
        """Thread-safe :meth:`DetectionServer.pause_batching`."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.server.pause_batching)

    def resume_batching(self) -> None:
        """Thread-safe :meth:`DetectionServer.resume_batching`."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.server.resume_batching)

    def call(self, coro_fn, *args, **kwargs):
        """Run ``await coro_fn(*args)`` on the server's loop, synchronously."""
        if self._loop is None:
            raise ServeError("server thread is not running")
        fut = asyncio.run_coroutine_threadsafe(
            coro_fn(*args, **kwargs), self._loop
        )
        return fut.result(timeout=30.0)

    def stop(self, drain: bool = True) -> None:
        if self._loop is None or self._thread is None:
            return
        self.call(self.server.stop, drain=drain)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._thread = None
        self._loop = None

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
