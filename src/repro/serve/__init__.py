"""Online false-sharing detection service (``repro.serve``).

The paper's pitch is detection *without instrumentation* from PMU counts —
exactly what makes the method deployable as an always-on monitor rather
than a batch experiment.  This package turns the trained J48/C4.5 tree
into that monitor:

* :mod:`repro.serve.inference` — the fitted tree compiled into flat numpy
  arrays with a vectorized ``predict_batch`` that classifies thousands of
  normalized event vectors per call, bit-identical to the recursive
  :meth:`repro.ml.c45.C45Classifier.predict`;
* :mod:`repro.serve.stream` — sliding/tumbling-window aggregation of raw
  PMU samples into instruction-normalized feature vectors, keyed per
  source (pid/core);
* :mod:`repro.serve.server` — an asyncio JSON-lines TCP server with
  micro-batching, bounded queues, explicit backpressure (typed
  ``overloaded`` shed responses), graceful drain and hot model reload;
* :mod:`repro.serve.client` — a small synchronous client library with a
  pipelined bulk mode;
* :mod:`repro.serve.loadgen` — a deterministic load generator replaying
  suite-derived event streams, reporting p50/p95/p99 latency, throughput
  and shed counts (``BENCH_serve.json``).
"""

from repro.serve.client import ServeClient
from repro.serve.inference import CompiledTree, as_compiled
from repro.serve.loadgen import LoadGenResult, generate_stream, run_loadgen
from repro.serve.server import DetectionServer, ServerThread
from repro.serve.stream import StreamWindow, WindowAggregator

__all__ = [
    "CompiledTree",
    "as_compiled",
    "DetectionServer",
    "ServerThread",
    "ServeClient",
    "StreamWindow",
    "WindowAggregator",
    "LoadGenResult",
    "generate_stream",
    "run_loadgen",
]
