"""Online false-sharing detection service (``repro.serve``).

The paper's pitch is detection *without instrumentation* from PMU counts —
exactly what makes the method deployable as an always-on monitor rather
than a batch experiment.  This package turns the trained J48/C4.5 tree
into that monitor:

* :mod:`repro.serve.inference` — the fitted tree compiled into flat numpy
  arrays with a vectorized ``predict_batch`` that classifies thousands of
  normalized event vectors per call, bit-identical to the recursive
  :meth:`repro.ml.c45.C45Classifier.predict`;
* :mod:`repro.serve.stream` — sliding/tumbling-window aggregation of raw
  PMU samples into instruction-normalized feature vectors, keyed per
  source (pid/core);
* :mod:`repro.serve.server` — an asyncio JSON-lines TCP server with
  micro-batching, bounded queues, explicit backpressure (typed
  ``overloaded`` shed responses), graceful drain and hot model reload;
* :mod:`repro.serve.client` — a small synchronous client library with a
  pipelined bulk mode;
* :mod:`repro.serve.loadgen` — a deterministic load generator replaying
  suite-derived event streams, reporting p50/p95/p99 latency, throughput
  and shed counts (``BENCH_serve.json``);
* :mod:`repro.serve.router` — a consistent-hash router sharding classify
  traffic by ``source`` onto a pool of workers, forwarding raw bytes for
  bit-identical verdicts;
* :mod:`repro.serve.admission` — token-bucket admission control with an
  explicit per-source shed ledger;
* :mod:`repro.serve.aggregate` — fleet-level majority/streak verdict
  aggregation over the relayed labels;
* :mod:`repro.serve.fleet` — worker-process supervision: spawn, watch,
  hot-restart, all wired to the router (``repro-serve fleet``).
"""

from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.aggregate import SourceVerdicts, VerdictAggregator
from repro.serve.client import ServeClient
from repro.serve.fleet import DetectionFleet, FleetSupervisor, FleetThread
from repro.serve.inference import CompiledTree, as_compiled
from repro.serve.loadgen import (LoadGenResult, ScaleResult, generate_stream,
                                 run_loadgen, run_scale_loadgen)
from repro.serve.router import DetectionRouter, HashRing, RouterThread
from repro.serve.server import DetectionServer, ServerThread
from repro.serve.stream import StreamWindow, WindowAggregator

__all__ = [
    "CompiledTree",
    "as_compiled",
    "DetectionServer",
    "ServerThread",
    "ServeClient",
    "StreamWindow",
    "WindowAggregator",
    "LoadGenResult",
    "ScaleResult",
    "generate_stream",
    "run_loadgen",
    "run_scale_loadgen",
    "AdmissionController",
    "TokenBucket",
    "SourceVerdicts",
    "VerdictAggregator",
    "DetectionRouter",
    "HashRing",
    "RouterThread",
    "DetectionFleet",
    "FleetSupervisor",
    "FleetThread",
]
