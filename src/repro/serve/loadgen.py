"""Deterministic load generator for the detection service.

Replays suite-derived event streams against a running server and reports
what a capacity plan needs: sustained throughput, p50/p95/p99 latency and
the shed count.  The stream is generated from the same simulated testbed
as everything else in this repo — a fixed mix of mini-program and
Phoenix/PARSEC runs (good, bad-fs and bad-ma cases), re-measured with
fresh PMU noise per request — so the vectors are exactly the distribution
the detector sees in production, and two runs with the same seed produce
bit-identical request streams.

``BENCH_serve.json`` at the repo root is this module's output (via
``repro-serve bench``); CI replays a smoke-sized run and fails on any
shed, so the serving path's capacity is tracked per PR like the
simulator's throughput is.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.lab import Lab
from repro.utils.stats import tally

__all__ = ["LoadGenResult", "generate_stream", "run_loadgen",
           "measure_predict_batch", "bench_payload"]

#: The replayed mix: (workload-ish, config factory, expected flavour).
#: Mini-programs cover the three classes cheaply; the two suite cases are
#: the paper's marquee false-sharing programs (linear_regression at -O0,
#: streamcluster) so the served stream contains real "production" vectors.
def _stream_mix() -> List[Tuple[object, object, str]]:
    from repro.suites import get_program
    from repro.suites.base import SuiteCase
    from repro.workloads.base import Mode, RunConfig
    from repro.workloads.registry import get_workload

    psums = get_workload("psums")
    pdot = get_workload("pdot")
    seq = get_workload("seq_read")
    lr = get_program("linear_regression")
    sc = get_program("streamcluster")
    size = psums.train_sizes[-1]
    return [
        (psums, RunConfig(threads=4, mode=Mode.GOOD, size=size), "good"),
        (psums, RunConfig(threads=4, mode=Mode.BAD_FS, size=size), "bad-fs"),
        (pdot, RunConfig(threads=6, mode=Mode.GOOD,
                         size=pdot.train_sizes[-1]), "good"),
        (seq, RunConfig(threads=1, mode=Mode.BAD_MA, size=65_536,
                        pattern="stride16"), "bad-ma"),
        (lr, SuiteCase("50MB", "-O0", 6), "suite:linear_regression"),
        (sc, SuiteCase("simsmall", "-O2", 4), "suite:streamcluster"),
    ]


def generate_stream(
    n: int,
    seed: int = 0,
    lab: Optional[Lab] = None,
    distinct: int = 2048,
) -> Tuple[np.ndarray, List[str]]:
    """``n`` normalized feature vectors + their source tags, deterministic.

    Each base run in the mix is simulated once (cached); requests cycle
    through the mix with a fresh PMU-noise draw per repetition (``rep``
    keys the draw), so up to ``distinct`` genuinely different measurements
    are produced and then tiled to length ``n`` — a replayed stream.
    """
    from repro.core.training import FEATURES
    from repro.pmu.events import TABLE2_EVENTS

    if n < 1:
        raise ValueError("n must be >= 1")
    lab = lab or Lab(seed=seed)
    mix = _stream_mix()
    base = min(n, max(len(mix), distinct))
    # One simulation per base run (cached on disk across invocations);
    # every replayed request then re-reads the PMU with its own run_id, so
    # the noise draw — and therefore the vector — differs per request
    # exactly as repeated measurements of one run differ on hardware.
    results = [lab.simulate(workload, cfg) for workload, cfg, _ in mix]
    rows: List[np.ndarray] = []
    tags: List[str] = []
    for i in range(base):
        j = i % len(mix)
        vec = lab.sampler.measure(results[j], TABLE2_EVENTS,
                                  run_id=f"loadgen-{i}")
        rows.append(vec.features(FEATURES))
        tags.append(mix[j][2])
    lab.flush()
    X = np.vstack(rows)
    reps = -(-n // base)
    X = np.tile(X, (reps, 1))[:n]
    tags = (tags * reps)[:n]
    return X, tags


@dataclass
class LoadGenResult:
    """One load-generation run, ready to serialize into BENCH_serve.json."""

    requests: int
    window: int
    seconds: float
    throughput_rps: float
    latency_ms: Dict[str, float]
    shed: int
    errors: int
    labels: Dict[str, int] = field(default_factory=dict)
    server: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "window": self.window,
            "seconds": round(self.seconds, 4),
            "throughput_rps": round(self.throughput_rps, 1),
            "latency_ms": {k: round(v, 4)
                           for k, v in self.latency_ms.items()},
            "shed": self.shed,
            "errors": self.errors,
            "labels": dict(self.labels),
            "server": self.server,
        }


def run_loadgen(
    host: str,
    port: int,
    X: np.ndarray,
    window: int = 512,
) -> LoadGenResult:
    """Replay ``X`` against a running server over one pipelined connection."""
    from repro.serve.client import ServeClient

    with ServeClient(host, port) as client:
        bulk = client.classify_many(X, window=window)
        server_stats = client.stats()
    return LoadGenResult(
        requests=X.shape[0] if X.ndim == 2 else 1,
        window=window,
        seconds=bulk.seconds,
        throughput_rps=bulk.throughput_rps,
        latency_ms=bulk.latency_percentiles_ms(),
        shed=bulk.shed,
        errors=bulk.errors,
        labels=tally(lab for lab in bulk.labels if lab is not None),
        server={
            "batches": server_stats.get("batches"),
            "max_batch_seen": server_stats.get("max_batch_seen"),
            "shed": server_stats.get("shed"),
            "config": server_stats.get("config", {}),
        },
    )


def measure_predict_batch(
    compiled, X: np.ndarray, repeats: int = 3
) -> float:
    """Vectors/second of the bare compiled tree on this batch (best-of)."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        compiled.predict_batch(X)
        best = min(best, time.perf_counter() - t0)
    return X.shape[0] / best if best > 0 else float("inf")


def bench_payload(
    result: LoadGenResult,
    predict_batch_vps: float,
    mode: str = "smoke",
) -> Dict[str, Any]:
    """The ``BENCH_serve.json`` document for one load-generation run."""
    import os

    return {
        "bench": "serve-throughput",
        "mode": mode,
        "cpus": os.cpu_count(),
        "loadgen": result.to_dict(),
        "predict_batch_vectors_per_s": round(predict_batch_vps),
    }
