"""Deterministic load generator for the detection service.

Replays suite-derived event streams against a running server and reports
what a capacity plan needs: sustained throughput, p50/p95/p99 latency and
the shed count.  The stream is generated from the same simulated testbed
as everything else in this repo — a fixed mix of mini-program and
Phoenix/PARSEC runs (good, bad-fs and bad-ma cases), re-measured with
fresh PMU noise per request — so the vectors are exactly the distribution
the detector sees in production, and two runs with the same seed produce
bit-identical request streams.

``BENCH_serve.json`` at the repo root is this module's output (via
``repro-serve bench``); CI replays a smoke-sized run and fails on any
shed, so the serving path's capacity is tracked per PR like the
simulator's throughput is.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.lab import Lab
from repro.errors import ServeError
from repro.utils.stats import tally

__all__ = ["LoadGenResult", "ScaleResult", "generate_stream", "run_loadgen",
           "run_scale_loadgen", "measure_predict_batch", "bench_payload"]

#: The replayed mix: (workload-ish, config factory, expected flavour).
#: Mini-programs cover the three classes cheaply; the two suite cases are
#: the paper's marquee false-sharing programs (linear_regression at -O0,
#: streamcluster) so the served stream contains real "production" vectors.
def _stream_mix() -> List[Tuple[object, object, str]]:
    from repro.suites import get_program
    from repro.suites.base import SuiteCase
    from repro.workloads.base import Mode, RunConfig
    from repro.workloads.registry import get_workload

    psums = get_workload("psums")
    pdot = get_workload("pdot")
    seq = get_workload("seq_read")
    lr = get_program("linear_regression")
    sc = get_program("streamcluster")
    size = psums.train_sizes[-1]
    return [
        (psums, RunConfig(threads=4, mode=Mode.GOOD, size=size), "good"),
        (psums, RunConfig(threads=4, mode=Mode.BAD_FS, size=size), "bad-fs"),
        (pdot, RunConfig(threads=6, mode=Mode.GOOD,
                         size=pdot.train_sizes[-1]), "good"),
        (seq, RunConfig(threads=1, mode=Mode.BAD_MA, size=65_536,
                        pattern="stride16"), "bad-ma"),
        (lr, SuiteCase("50MB", "-O0", 6), "suite:linear_regression"),
        (sc, SuiteCase("simsmall", "-O2", 4), "suite:streamcluster"),
    ]


def generate_stream(
    n: int,
    seed: int = 0,
    lab: Optional[Lab] = None,
    distinct: int = 2048,
) -> Tuple[np.ndarray, List[str]]:
    """``n`` normalized feature vectors + their source tags, deterministic.

    Each base run in the mix is simulated once (cached); requests cycle
    through the mix with a fresh PMU-noise draw per repetition (``rep``
    keys the draw), so up to ``distinct`` genuinely different measurements
    are produced and then tiled to length ``n`` — a replayed stream.
    """
    from repro.core.training import FEATURES
    from repro.pmu.events import TABLE2_EVENTS

    if n < 1:
        raise ValueError("n must be >= 1")
    lab = lab or Lab(seed=seed)
    mix = _stream_mix()
    base = min(n, max(len(mix), distinct))
    # One simulation per base run (cached on disk across invocations);
    # every replayed request then re-reads the PMU with its own run_id, so
    # the noise draw — and therefore the vector — differs per request
    # exactly as repeated measurements of one run differ on hardware.
    results = [lab.simulate(workload, cfg) for workload, cfg, _ in mix]
    rows: List[np.ndarray] = []
    tags: List[str] = []
    for i in range(base):
        j = i % len(mix)
        vec = lab.sampler.measure(results[j], TABLE2_EVENTS,
                                  run_id=f"loadgen-{i}")
        rows.append(vec.features(FEATURES))
        tags.append(mix[j][2])
    lab.flush()
    X = np.vstack(rows)
    reps = -(-n // base)
    X = np.tile(X, (reps, 1))[:n]
    tags = (tags * reps)[:n]
    return X, tags


@dataclass
class LoadGenResult:
    """One load-generation run, ready to serialize into BENCH_serve.json."""

    requests: int
    window: int
    seconds: float
    throughput_rps: float
    latency_ms: Dict[str, float]
    shed: int
    errors: int
    labels: Dict[str, int] = field(default_factory=dict)
    server: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "window": self.window,
            "seconds": round(self.seconds, 4),
            "throughput_rps": round(self.throughput_rps, 1),
            "latency_ms": {k: round(v, 4)
                           for k, v in self.latency_ms.items()},
            "shed": self.shed,
            "errors": self.errors,
            "labels": dict(self.labels),
            "server": self.server,
        }


def run_loadgen(
    host: str,
    port: int,
    X: np.ndarray,
    window: int = 512,
) -> LoadGenResult:
    """Replay ``X`` against a running server over one pipelined connection."""
    from repro.serve.client import ServeClient

    with ServeClient(host, port) as client:
        bulk = client.classify_many(X, window=window)
        server_stats = client.stats()
    return LoadGenResult(
        requests=X.shape[0] if X.ndim == 2 else 1,
        window=window,
        seconds=bulk.seconds,
        throughput_rps=bulk.throughput_rps,
        latency_ms=bulk.latency_percentiles_ms(),
        shed=bulk.shed,
        errors=bulk.errors,
        labels=tally(lab for lab in bulk.labels if lab is not None),
        server={
            "batches": server_stats.get("batches"),
            "max_batch_seen": server_stats.get("max_batch_seen"),
            "shed": server_stats.get("shed"),
            "config": server_stats.get("config", {}),
        },
    )


@dataclass
class ScaleResult:
    """One multi-connection batched run against the fleet router."""

    vectors: int
    requests: int          # batch-framed JSON lines sent
    connections: int
    batch: int
    seconds: float
    throughput_vps: float  # completed vectors / wall seconds
    latency_ms: Dict[str, float]   # per batch line, send -> response
    completed: int
    shed: int              # vectors, all reasons
    errors: int            # vectors lost to non-shed errors
    labels: Dict[str, int] = field(default_factory=dict)
    router: Dict[str, Any] = field(default_factory=dict)
    fleet: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "vectors": self.vectors,
            "requests": self.requests,
            "connections": self.connections,
            "batch": self.batch,
            "seconds": round(self.seconds, 4),
            "throughput_vps": round(self.throughput_vps, 1),
            "latency_ms": {k: round(v, 4)
                           for k, v in self.latency_ms.items()},
            "completed": self.completed,
            "shed": self.shed,
            "errors": self.errors,
            "labels": dict(self.labels),
            "router": self.router,
            "fleet": self.fleet,
        }


class _ConnStats:
    """Per-connection tallies filled in by one driver thread."""

    def __init__(self) -> None:
        self.latency_s: List[float] = []
        self.labels: Dict[str, int] = {}
        self.completed = 0
        self.shed = 0
        self.errors = 0
        self.failure: Optional[BaseException] = None


def _drive_scale_connection(
    host: str,
    port: int,
    jobs: List[Tuple[bytes, int]],
    window: int,
    barrier: threading.Barrier,
    out: _ConnStats,
) -> None:
    """Send batch-framed lines with ``window`` in flight; match by id.

    Unlike the single-server pipelined path, router responses for one
    client connection are *not* FIFO — different sources live on
    different shards — so responses are matched to requests by ``id``.
    """
    try:
        sock = socket.create_connection((host, port), timeout=60.0)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        rfile = sock.makefile("rb")
        rows_of = {i: rows for i, (_, rows) in enumerate(jobs)}
        t_sent: Dict[int, float] = {}
        barrier.wait()
        sent = received = 0
        n = len(jobs)
        while received < n:
            burst = bytearray()
            while sent < n and sent - received < window:
                t_sent[sent] = time.perf_counter()
                burst += jobs[sent][0]
                sent += 1
            if burst:
                sock.sendall(burst)
            line = rfile.readline()
            if not line:
                raise ServeError("connection closed mid-stream")
            t_recv = time.perf_counter()
            resp = json.loads(line)
            rid = resp.get("id")
            if not isinstance(rid, int) or rid not in t_sent:
                raise ServeError(f"response with unknown id: {resp!r}")
            received += 1
            out.latency_s.append(t_recv - t_sent.pop(rid))
            rows = rows_of[rid]
            if "labels" in resp:
                out.completed += len(resp["labels"])
                for lab in resp["labels"]:
                    out.labels[lab] = out.labels.get(lab, 0) + 1
            elif resp.get("error") in ("overloaded", "unavailable",
                                       "backlog", "admission"):
                out.shed += rows
            else:
                out.errors += rows
        rfile.close()
        sock.close()
    except BaseException as exc:  # surfaced by the caller
        out.failure = exc
        try:
            barrier.abort()
        except Exception:
            pass


def run_scale_loadgen(
    host: str,
    port: int,
    X: np.ndarray,
    tags: List[str],
    connections: int = 4,
    batch: int = 256,
    window: int = 8,
) -> ScaleResult:
    """Replay ``X`` as batch-framed lines over concurrent connections.

    Rows are grouped by source tag (order preserved within a source, so
    verdict streams stay coherent), chunked into ``batch``-row lines, and
    the sources are dealt round-robin onto ``connections`` sockets driven
    by one thread each with ``window`` lines in flight.  Request payloads
    are pre-encoded so the measured interval is the serving path, not
    client-side JSON formatting.
    """
    from repro.serve.client import ServeClient

    X = np.asarray(X, dtype=float)
    if X.ndim != 2 or X.shape[0] != len(tags):
        raise ServeError("X must be 2-D with one tag per row")
    connections = max(1, int(connections))
    batch = max(1, int(batch))

    by_source: Dict[str, List[int]] = {}
    for i, tag in enumerate(tags):
        by_source.setdefault(str(tag), []).append(i)

    # Request ids are per-connection (the driver matches responses to
    # requests by id within its own socket, where they are unique).
    conn_jobs: List[List[Tuple[bytes, int]]] = [[] for _ in range(connections)]
    total_lines = 0
    for k, (source, idxs) in enumerate(sorted(by_source.items())):
        target = conn_jobs[k % connections]
        for lo in range(0, len(idxs), batch):
            chunk = idxs[lo:lo + batch]
            payload = json.dumps({
                "op": "classify", "id": len(target), "source": source,
                "n": len(chunk),
                "batch": [[float(v) for v in X[i]] for i in chunk],
            }).encode() + b"\n"
            target.append((payload, len(chunk)))
            total_lines += 1

    active = [jobs for jobs in conn_jobs if jobs]
    stats = [_ConnStats() for _ in active]
    barrier = threading.Barrier(len(active) + 1)
    threads = [
        threading.Thread(
            target=_drive_scale_connection,
            args=(host, port, jobs, window, barrier, out),
            daemon=True,
        )
        for jobs, out in zip(active, stats)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    seconds = time.perf_counter() - t0
    for out in stats:
        if out.failure is not None:
            raise ServeError(
                f"scale loadgen connection failed: {out.failure}"
            ) from out.failure

    latencies = np.array(
        [v for out in stats for v in out.latency_s], dtype=float
    )
    if latencies.size:
        latency_ms = {
            "p50": float(np.percentile(latencies, 50) * 1e3),
            "p95": float(np.percentile(latencies, 95) * 1e3),
            "p99": float(np.percentile(latencies, 99) * 1e3),
            "mean": float(latencies.mean() * 1e3),
            "max": float(latencies.max() * 1e3),
        }
    else:
        latency_ms = {"p50": 0.0, "p95": 0.0, "p99": 0.0,
                      "mean": 0.0, "max": 0.0}
    labels: Dict[str, int] = {}
    for out in stats:
        for lab, cnt in out.labels.items():
            labels[lab] = labels.get(lab, 0) + cnt
    completed = sum(out.completed for out in stats)
    shed = sum(out.shed for out in stats)
    errors = sum(out.errors for out in stats)

    router_stats: Dict[str, Any] = {}
    fleet_summary: Dict[str, Any] = {}
    try:
        with ServeClient(host, port, timeout=10.0) as control:
            router_stats = control.stats()
            resp = control.request({"op": "fleet"})
            fleet_summary = resp.get("fleet", {})
    except ServeError:
        pass  # plain DetectionServer: no fleet endpoint, stats optional

    return ScaleResult(
        vectors=int(X.shape[0]),
        requests=total_lines,
        connections=len(active),
        batch=batch,
        seconds=seconds,
        throughput_vps=completed / seconds if seconds > 0 else 0.0,
        latency_ms=latency_ms,
        completed=completed,
        shed=shed,
        errors=errors,
        labels=labels,
        router=router_stats,
        fleet=fleet_summary,
    )


def measure_predict_batch(
    compiled, X: np.ndarray, repeats: int = 3
) -> float:
    """Vectors/second of the bare compiled tree on this batch (best-of)."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        compiled.predict_batch(X)
        best = min(best, time.perf_counter() - t0)
    return X.shape[0] / best if best > 0 else float("inf")


def bench_payload(
    result: LoadGenResult,
    predict_batch_vps: float,
    mode: str = "smoke",
    scale: Optional[ScaleResult] = None,
    scale_shed_ceiling: int = 0,
) -> Dict[str, Any]:
    """The ``BENCH_serve.json`` document for one load-generation run.

    The host provenance (``cpus``, ``affinity_cpus``) is read from the
    machine the bench actually ran on; the ``scale`` section — when a
    fleet run is included — carries the worker count and router config
    straight out of the router's own stats so the recorded throughput
    can never be quoted without its topology.
    """
    import os

    try:
        affinity = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        affinity = os.cpu_count()
    doc: Dict[str, Any] = {
        "bench": "serve-throughput",
        "mode": mode,
        "cpus": os.cpu_count(),
        "affinity_cpus": affinity,
        "loadgen": result.to_dict(),
        "predict_batch_vectors_per_s": round(predict_batch_vps),
    }
    if scale is not None:
        router = scale.router
        doc["scale"] = {
            **scale.to_dict(),
            "workers": len(router.get("workers", [])) or None,
            "router_config": router.get("config", {}),
            # Declared acceptable shed for this run — the results store
            # carries it as the hard gate bound on scale.shed.
            "shed_ceiling": int(scale_shed_ceiling),
            # Same-run comparison: batched fleet path vs the line-at-a-time
            # single-server path measured moments earlier on this host.
            "speedup_vs_single": round(
                scale.throughput_vps / result.throughput_rps, 2
            ) if result.throughput_rps > 0 else None,
        }
    return doc
