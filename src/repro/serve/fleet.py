"""Worker-process supervision for the sharded detection tier.

``repro.serve.fleet`` ties the pieces together into one deployable unit:

* :class:`FleetSupervisor` — spawns N worker *processes* (each a plain
  :class:`~repro.serve.server.DetectionServer` + compiled tree on its
  own event loop and ephemeral port, built from a persisted model
  document), restarts them on demand or on crash, and tears them down;
* :class:`DetectionFleet` — a supervisor plus a
  :class:`~repro.serve.router.DetectionRouter` wired to the pool, with a
  watchdog that detects dead workers, respawns them and reconnects the
  router (the shard's *name* — and therefore its hash-ring slice — is
  stable across restarts, so only the restarting shard's in-flight work
  is shed; every other source's stream is untouched);
* :class:`FleetThread` — the synchronous wrapper (the twin of
  :class:`~repro.serve.server.ServerThread`) used by the CLI, the load
  generator and tests.

Workers are separate OS processes (``multiprocessing`` spawn context, so
no event-loop or fork-safety hazards), which is what buys real CPU
parallelism on multi-core hosts: each worker pins one core's worth of
JSON framing + inference, and the router's raw-byte forwarding keeps the
front-end cheap enough to feed several of them.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing as mp
import signal
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ServeError
from repro.serve.admission import AdmissionController
from repro.serve.aggregate import VerdictAggregator
from repro.serve.router import DetectionRouter

__all__ = ["FleetSupervisor", "DetectionFleet", "FleetThread",
           "load_model_doc"]


def load_model_doc(model: Union[str, Path, Dict[str, Any], Any]) -> Dict[str, Any]:
    """A picklable model *document* for shipping to worker processes.

    Accepts a path to persisted model JSON, an already-loaded document
    dict, or a fitted classifier (serialized via
    :func:`repro.ml.persistence.classifier_to_dict`).
    """
    if isinstance(model, dict):
        return model
    if isinstance(model, (str, Path)):
        try:
            doc = json.loads(Path(model).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ServeError(f"cannot load model document: {exc}") from exc
        if not isinstance(doc, dict):
            raise ServeError("model document must be a JSON object")
        return doc
    if hasattr(model, "root_"):
        from repro.ml.persistence import classifier_to_dict

        return classifier_to_dict(model)
    raise ServeError(
        f"cannot ship a {type(model).__name__} to worker processes; "
        "pass a model path, document dict, or fitted classifier"
    )


def _worker_main(model_doc: Dict[str, Any], host: str, conn,
                 max_batch: int, max_wait_s: float, backlog: int) -> None:
    """Worker process entry point: serve one DetectionServer forever."""
    # The supervisor owns this process's lifecycle (terminate/join); a
    # terminal Ctrl-C must not race it with a KeyboardInterrupt traceback.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # Import inside the child: the spawn context re-imports repro fresh.
    from repro.ml.persistence import classifier_from_dict
    from repro.serve.inference import CompiledTree
    from repro.serve.server import DetectionServer

    try:
        compiled = CompiledTree.from_classifier(
            classifier_from_dict(model_doc)
        )
        server = DetectionServer(
            compiled, host=host, port=0, max_batch=max_batch,
            max_wait_s=max_wait_s, backlog=backlog,
        )

        async def _serve() -> None:
            bound_host, bound_port = await server.start()
            conn.send(("ready", bound_host, bound_port))
            conn.close()
            await server.serve_forever()

        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - parent-driven shutdown
        pass
    except BaseException as exc:
        try:
            conn.send(("error", repr(exc), 0))
            conn.close()
        except OSError:  # pragma: no cover - parent already gone
            pass
        raise


class _Worker:
    """One supervised worker process and its bound address."""

    __slots__ = ("name", "process", "host", "port")

    def __init__(self, name: str, process, host: str, port: int) -> None:
        self.name = name
        self.process = process
        self.host = host
        self.port = port

    def alive(self) -> bool:
        return self.process.is_alive()


class FleetSupervisor:
    """Spawns, restarts and stops the worker-process pool."""

    def __init__(
        self,
        model: Union[str, Path, Dict[str, Any], Any],
        workers: int = 2,
        host: str = "127.0.0.1",
        max_batch: int = 256,
        max_wait_s: float = 0.002,
        backlog: int = 4096,
        start_timeout_s: float = 60.0,
    ) -> None:
        if workers < 1:
            raise ServeError("a fleet needs at least one worker")
        self.model_doc = load_model_doc(model)
        self.n_workers = workers
        self.host = host
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.backlog = backlog
        self.start_timeout_s = start_timeout_s
        self._ctx = mp.get_context("spawn")
        self._workers: Dict[str, _Worker] = {}
        self.restarts = 0

    # ------------------------------------------------------------ lifecycle

    def start(self) -> List[Tuple[str, str, int]]:
        """Spawn every worker; returns ``[(name, host, port), ...]``."""
        if self._workers:
            raise ServeError("fleet already started")
        for i in range(self.n_workers):
            self._spawn(f"w{i}")
        return [(w.name, w.host, w.port)
                for w in self._workers.values()]

    def _spawn(self, name: str) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(self.model_doc, self.host, child_conn,
                  self.max_batch, self.max_wait_s, self.backlog),
            name=f"repro-serve-{name}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(self.start_timeout_s):
            process.terminate()
            raise ServeError(f"worker {name} did not start within "
                             f"{self.start_timeout_s}s")
        status, host, port = parent_conn.recv()
        parent_conn.close()
        if status != "ready":
            process.join(timeout=5.0)
            raise ServeError(f"worker {name} failed to start: {host}")
        worker = _Worker(name, process, host, int(port))
        self._workers[name] = worker
        return worker

    def restart(self, name: str) -> Tuple[str, int]:
        """Kill ``name`` and spawn a replacement; returns its new address."""
        worker = self._workers.pop(name, None)
        if worker is None:
            raise ServeError(f"unknown worker {name!r}")
        self._terminate(worker)
        self.restarts += 1
        fresh = self._spawn(name)
        return fresh.host, fresh.port

    def stop(self) -> None:
        for worker in list(self._workers.values()):
            self._terminate(worker)
        self._workers.clear()

    @staticmethod
    def _terminate(worker: _Worker) -> None:
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=10.0)
        if worker.process.is_alive():  # pragma: no cover - stuck process
            worker.process.kill()
            worker.process.join(timeout=5.0)

    # -------------------------------------------------------------- reading

    @property
    def workers(self) -> Dict[str, Tuple[str, int]]:
        return {w.name: (w.host, w.port) for w in self._workers.values()}

    def dead_workers(self) -> List[str]:
        return sorted(name for name, w in self._workers.items()
                      if not w.alive())

    def stats(self) -> Dict[str, Any]:
        return {
            "workers": self.n_workers,
            "alive": sum(1 for w in self._workers.values() if w.alive()),
            "restarts": self.restarts,
            "config": {
                "max_batch": self.max_batch,
                "max_wait_ms": self.max_wait_s * 1e3,
                "backlog": self.backlog,
            },
        }


class DetectionFleet:
    """Supervisor + router, managed together on one event loop."""

    def __init__(
        self,
        model: Union[str, Path, Dict[str, Any], Any],
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        admission: Optional[AdmissionController] = None,
        aggregator: Optional[VerdictAggregator] = None,
        watchdog_interval_s: float = 0.25,
        **worker_opts,
    ) -> None:
        self.supervisor = FleetSupervisor(model, workers=workers,
                                          **worker_opts)
        self.router = DetectionRouter(host=host, port=port,
                                      admission=admission,
                                      aggregator=aggregator)
        self.watchdog_interval_s = watchdog_interval_s
        self._watchdog_task: Optional[asyncio.Task] = None

    async def start(self) -> Tuple[str, int]:
        """Spawn workers, start the router, join the pool; returns the
        router's bound address."""
        loop = asyncio.get_running_loop()
        members = await loop.run_in_executor(None, self.supervisor.start)
        address = await self.router.start()
        for name, host, port in members:
            await self.router.add_worker(name, host, port)
        if self.watchdog_interval_s > 0:
            self._watchdog_task = asyncio.create_task(self._watchdog())
        return address

    async def stop(self) -> None:
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
            try:
                await self._watchdog_task
            except asyncio.CancelledError:
                pass
            self._watchdog_task = None
        await self.router.stop()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.supervisor.stop)

    async def restart_worker(self, name: str) -> Tuple[str, int]:
        """Hot-restart one shard: fail its in-flight work explicitly,
        respawn the process, reconnect — other shards never notice."""
        await self.router.mark_worker_down(name)
        loop = asyncio.get_running_loop()
        host, port = await loop.run_in_executor(
            None, self.supervisor.restart, name
        )
        await self.router.set_worker_address(name, host, port)
        return host, port

    async def _watchdog(self) -> None:
        """Respawn crashed workers automatically."""
        while True:
            await asyncio.sleep(self.watchdog_interval_s)
            for name in self.supervisor.dead_workers():
                try:
                    await self.restart_worker(name)
                except ServeError:  # pragma: no cover - respawn race
                    continue

    def stats(self) -> Dict[str, Any]:
        return {"supervisor": self.supervisor.stats(),
                "router": self.router.stats()}


class FleetThread:
    """A :class:`DetectionFleet` on a private event loop in a thread.

    Synchronous embedding for the CLI, load generator and tests::

        with FleetThread(model_doc, workers=4) as (host, port):
            client = ServeClient(host, port)
            ...
    """

    def __init__(self, model, **kwargs) -> None:
        import threading

        self.fleet = DetectionFleet(model, **kwargs)
        self._threading = threading
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[Any] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.address: Optional[Tuple[str, int]] = None

    def start(self) -> Tuple[str, int]:
        if self._thread is not None:
            raise ServeError("fleet thread already started")
        self._loop = asyncio.new_event_loop()
        self._thread = self._threading.Thread(
            target=self._run, name="repro-serve-fleet", daemon=True
        )
        self._thread.start()
        # Spawning N interpreter processes is slow; be generous.
        deadline = time.monotonic() + self.fleet.supervisor.start_timeout_s
        while not self._started.wait(timeout=0.5):
            if time.monotonic() > deadline:
                raise ServeError("fleet thread failed to start")
        if self._startup_error is not None:
            raise ServeError(
                f"fleet failed to start: {self._startup_error}"
            ) from self._startup_error
        assert self.address is not None
        return self.address

    def _run(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        try:
            self.address = self._loop.run_until_complete(self.fleet.start())
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            self._loop.close()
            return
        self._started.set()
        self._loop.run_forever()
        self._loop.run_until_complete(asyncio.sleep(0))
        self._loop.close()

    def call(self, coro_fn, *args, timeout: float = 60.0, **kwargs):
        """Run ``await coro_fn(*args)`` on the fleet's loop, synchronously."""
        if self._loop is None:
            raise ServeError("fleet thread is not running")
        fut = asyncio.run_coroutine_threadsafe(
            coro_fn(*args, **kwargs), self._loop
        )
        return fut.result(timeout=timeout)

    def restart_worker(self, name: str) -> Tuple[str, int]:
        """Thread-safe hot restart of one shard."""
        return self.call(self.fleet.restart_worker, name, timeout=120.0)

    def stats(self) -> Dict[str, Any]:
        return self.fleet.stats()

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        self.call(self.fleet.stop, timeout=120.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30.0)
        self._thread = None
        self._loop = None

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
