"""Fleet-level verdict aggregation for the sharded serving tier.

Each worker classifies the windows of the sources hashed onto its shard;
the router feeds every label it relays through a
:class:`VerdictAggregator`, which maintains per-source verdict state and
merges it into a fleet view — the control-plane → aggregator shape of
MicroSentinel's agent, applied to window labels instead of raw HITM
lines.

Per source it tracks:

* a **majority verdict** over the last ``majority_window`` labels (ties
  broken lexicographically, matching :func:`repro.utils.stats.majority`);
* the current **streak** (how many consecutive most-recent windows agree)
  — a source that has said ``bad-fs`` for 40 windows straight is a much
  stronger finding than one oscillating with ``good``;
* total label tallies since the source first appeared.

The fleet summary groups sources by their majority verdict and lists the
*alerting* sources (majority not ``good``), which is what an operator
polls via the router's ``{"op": "fleet"}`` control endpoint.

Because a source's windows are consistent-hashed onto exactly one worker,
per-source label order here is exactly the worker's response order — the
aggregation never interleaves two workers' verdicts for one source, which
is what keeps instruction-normalized window sequences coherent.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional

from repro.errors import ServeError
from repro.utils.stats import majority

__all__ = ["SourceVerdicts", "VerdictAggregator"]


class SourceVerdicts:
    """Rolling verdict state of one source."""

    __slots__ = ("source", "worker", "recent", "counts", "windows",
                 "streak_label", "streak")

    def __init__(self, source: str, window: int) -> None:
        self.source = source
        self.worker: Optional[str] = None
        self.recent: Deque[str] = deque(maxlen=window)
        self.counts: Dict[str, int] = {}
        self.windows = 0
        self.streak_label: Optional[str] = None
        self.streak = 0

    def observe(self, label: str) -> None:
        self.recent.append(label)
        self.counts[label] = self.counts.get(label, 0) + 1
        self.windows += 1
        if label == self.streak_label:
            self.streak += 1
        else:
            self.streak_label = label
            self.streak = 1

    @property
    def majority(self) -> str:
        return majority(self.recent)

    def summary(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "worker": self.worker,
            "windows": self.windows,
            "counts": dict(self.counts),
            "majority": self.majority,
            "majority_window": len(self.recent),
            "streak": {"label": self.streak_label, "length": self.streak},
        }


class VerdictAggregator:
    """Merges per-worker window verdicts into fleet-level verdicts."""

    def __init__(self, majority_window: int = 16) -> None:
        if majority_window < 1:
            raise ServeError("majority_window must be >= 1")
        self.majority_window = majority_window
        self._sources: Dict[str, SourceVerdicts] = {}
        self.labels_seen = 0

    # -------------------------------------------------------------- feeding

    def observe(self, source: str, labels: Iterable[str],
                worker: Optional[str] = None) -> None:
        """Record one source's next window verdicts (in stream order)."""
        state = self._sources.get(source)
        if state is None:
            state = self._sources[source] = SourceVerdicts(
                source, self.majority_window
            )
        if worker is not None:
            state.worker = worker
        for label in labels:
            state.observe(str(label))
            self.labels_seen += 1

    # -------------------------------------------------------------- reading

    @property
    def sources(self) -> List[str]:
        return sorted(self._sources)

    def source_summary(self, source: str) -> Dict[str, Any]:
        state = self._sources.get(source)
        if state is None:
            raise ServeError(f"unknown source {source!r}")
        return state.summary()

    def fleet_summary(self) -> Dict[str, Any]:
        """The merged fleet view: verdict census plus alerting sources."""
        by_verdict: Dict[str, int] = {}
        alerts: List[Dict[str, Any]] = []
        labels_total: Dict[str, int] = {}
        for source in self.sources:
            state = self._sources[source]
            verdict = state.majority
            by_verdict[verdict] = by_verdict.get(verdict, 0) + 1
            for label, n in state.counts.items():
                labels_total[label] = labels_total.get(label, 0) + n
            if verdict != "good":
                alerts.append({
                    "source": source,
                    "verdict": verdict,
                    "streak": state.streak,
                    "worker": state.worker,
                })
        alerts.sort(key=lambda a: (-a["streak"], a["source"]))
        return {
            "sources": len(self._sources),
            "windows": self.labels_seen,
            "majority_window": self.majority_window,
            "sources_by_verdict": by_verdict,
            "labels": labels_total,
            "alerts": alerts,
        }

    def verdict_streams(self) -> Dict[str, Any]:
        """Per-source verdict summaries keyed by source (results payload)."""
        return {s: self._sources[s].summary() for s in self.sources}
