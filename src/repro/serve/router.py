"""Consistent-hash router for the sharded detection fleet.

The single :class:`~repro.serve.server.DetectionServer` saturates one
event loop at roughly the JSON-lines framing rate; the fleet tier scales
past that by putting this router in front of a pool of worker processes,
each running the existing server + compiled tree.  Design:

* **Shard by source.**  Classify requests carry a ``source`` key (the
  monitored pid/core/stream); a consistent-hash ring maps every source
  onto exactly one worker, so the per-source window sequences the
  aggregation tier reasons about are never interleaved across workers
  (Röhl et al.'s event-validity point: a source's instruction-normalized
  vectors are only comparable within one counter stream).  Assignment is
  a pure function of the worker *pool membership* — restarting a worker
  keeps its name and therefore its shard; sources move only when the
  pool itself grows or shrinks.

* **Forward raw bytes.**  The router never re-encodes a classify
  request: it peeks ``op``/``source``/``id``/``n`` with cheap regex
  scans (full JSON parse only as a fallback) and forwards the original
  line to the worker, whose response line is relayed back verbatim.
  Floats are therefore parsed exactly once, by the worker — router-path
  verdicts are bit-identical to direct-server verdicts by construction.

* **One response per forwarded line.**  Workers answer every line in
  per-connection order, so a FIFO of in-flight entries per worker link
  is enough to match responses to clients — no id rewriting, no
  correlation headers.

* **Admit before forwarding.**  A token-bucket
  :class:`~repro.serve.admission.AdmissionController` charges each
  request its *vector* cost; rejected work gets an explicit
  ``overloaded`` response and lands in the shed ledger.  Worker
  backpressure (``overloaded`` from a full worker queue) and worker
  restarts (``unavailable``) are accounted the same way: the router's
  ``stats`` op proves ``received == completed + shed + errors +
  inflight`` at any instant — no silent drops.

* **Aggregate verdicts.**  Every relayed label is fed to a
  :class:`~repro.serve.aggregate.VerdictAggregator`; ``{"op": "fleet"}``
  and ``{"op": "verdicts", "source": ...}`` expose fleet-level
  majority/streak verdicts on the same TCP endpoint.
"""

from __future__ import annotations

import asyncio
import bisect
import contextlib
import hashlib
import json
import re
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import ServeError
from repro.serve.admission import AdmissionController
from repro.serve.aggregate import VerdictAggregator
from repro.serve.server import STREAM_LIMIT
from repro.telemetry.core import TELEMETRY

__all__ = ["HashRing", "DetectionRouter", "RouterThread"]


class HashRing:
    """Consistent hashing of string keys onto named members.

    Each member owns ``vnodes`` points on a 64-bit ring (blake2b of
    ``"name#i"`` — stable across processes and Python hash
    randomization); a key goes to the member owning the first point at
    or after the key's hash.  Removing a member moves only the keys it
    owned; re-adding it restores the exact previous assignment.
    """

    def __init__(self, members: Tuple[str, ...] = (), vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ServeError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[int] = []
        self._owners: List[str] = []
        self._members: Dict[str, List[int]] = {}
        for member in members:
            self.add(member)

    @staticmethod
    def _hash(key: str) -> int:
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8)
        return int.from_bytes(digest.digest(), "big")

    @property
    def members(self) -> List[str]:
        return sorted(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def add(self, member: str) -> None:
        if member in self._members:
            raise ServeError(f"ring member {member!r} already present")
        points = [self._hash(f"{member}#{i}") for i in range(self.vnodes)]
        self._members[member] = points
        for point in points:
            idx = bisect.bisect_left(self._points, point)
            self._points.insert(idx, point)
            self._owners.insert(idx, member)

    def remove(self, member: str) -> None:
        points = self._members.pop(member, None)
        if points is None:
            raise ServeError(f"unknown ring member {member!r}")
        for point in points:
            idx = bisect.bisect_left(self._points, point)
            # Duplicate points are astronomically unlikely but handled:
            # scan forward to this member's entry.
            while self._owners[idx] != member:
                idx += 1
            del self._points[idx]
            del self._owners[idx]

    def assign(self, key: str) -> str:
        """The member owning ``key`` (pure function of the membership)."""
        if not self._points:
            raise ServeError("hash ring has no members")
        idx = bisect.bisect_right(self._points, self._hash(key))
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]


# Fast-path scanners: pull routing facts out of a request line without a
# full JSON parse.  Anything they cannot settle falls back to json.loads;
# deep validation always happens at the worker, which parses the same raw
# bytes the client sent.
_OP_RE = re.compile(rb'"op"\s*:\s*"([a-z_]+)"')
_SOURCE_RE = re.compile(rb'"source"\s*:\s*"((?:[^"\\]|\\.){1,256})"')
_N_RE = re.compile(rb'"n"\s*:\s*(\d+)')
_ID_RE = re.compile(
    rb'"id"\s*:\s*("(?:[^"\\]|\\.)*"|-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?'
    rb'|true|false|null)'
)


class _InFlight:
    """One line forwarded to a worker, awaiting its one response."""

    __slots__ = ("queue", "source", "n", "id_token", "future")

    def __init__(self, queue: Optional[asyncio.Queue], source: str, n: int,
                 id_token: Optional[bytes],
                 future: Optional["asyncio.Future"] = None) -> None:
        self.queue = queue
        self.source = source
        self.n = n
        self.id_token = id_token
        self.future = future


class _WorkerLink:
    """The router's persistent connection to one worker."""

    __slots__ = ("name", "host", "port", "reader", "writer", "inflight",
                 "up", "reader_task", "forwarded_lines", "forwarded_vectors",
                 "completed_vectors", "restarts")

    def __init__(self, name: str, host: str, port: int) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.inflight: Deque[_InFlight] = deque()
        self.up = False
        self.reader_task: Optional[asyncio.Task] = None
        self.forwarded_lines = 0
        self.forwarded_vectors = 0
        self.completed_vectors = 0
        self.restarts = 0

    def inflight_vectors(self) -> int:
        return sum(e.n for e in self.inflight)

    def stats(self) -> Dict[str, Any]:
        return {
            "host": self.host,
            "port": self.port,
            "up": self.up,
            "inflight_lines": len(self.inflight),
            "inflight_vectors": self.inflight_vectors(),
            "forwarded_lines": self.forwarded_lines,
            "forwarded_vectors": self.forwarded_vectors,
            "completed_vectors": self.completed_vectors,
            "restarts": self.restarts,
        }


def _error_line(id_token: Optional[bytes], error: str, detail: str) -> bytes:
    body = (b'"error": "' + error.encode() + b'", "detail": "'
            + detail.encode() + b'"}')
    if id_token is None:
        return b"{" + body + b"\n"
    return b'{"id": ' + id_token + b", " + body + b"\n"


class DetectionRouter:
    """TCP/JSON-lines front-end sharding classify traffic onto workers.

    Workers are registered with :meth:`add_worker` (usually by
    :class:`~repro.serve.fleet.DetectionFleet`); clients speak the same
    protocol as to a single :class:`DetectionServer`, plus a ``source``
    field for shard affinity and the control ops ``fleet`` /
    ``verdicts`` / ``route``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        admission: Optional[AdmissionController] = None,
        aggregator: Optional[VerdictAggregator] = None,
        vnodes: int = 64,
        max_worker_inflight: int = 4096,
        connect_retries: int = 20,
        connect_backoff_s: float = 0.05,
    ) -> None:
        if max_worker_inflight < 1:
            raise ServeError("max_worker_inflight must be >= 1")
        self.host = host
        self.port = port
        self.admission = admission or AdmissionController()
        self.aggregator = aggregator or VerdictAggregator()
        self.ring = HashRing(vnodes=vnodes)
        self.max_worker_inflight = max_worker_inflight
        self.connect_retries = connect_retries
        self.connect_backoff_s = connect_backoff_s
        self._links: Dict[str, _WorkerLink] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._writers: set = set()
        self._conn_seq = 0
        self._accepting = False
        # Ledger, all vector-denominated (one classify vector = 1).
        self.requests = 0            # classify lines received
        self.vectors_received = 0
        self.vectors_completed = 0
        self.vectors_errored = 0
        self.shed_unavailable = 0
        self.shed_backlog = 0
        self.shed_overloaded = 0     # worker-queue backpressure, relayed
        self.shed_by_source: Dict[str, int] = {}

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> Tuple[str, int]:
        if self._server is not None:
            raise ServeError("router already started")
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=STREAM_LIMIT
        )
        self._accepting = True
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is None:
            return
        self._accepting = False
        self._server.close()
        await self._server.wait_closed()
        for name in list(self._links):
            await self._down_link(self._links[name],
                                  detail="router shutting down")
        for writer in list(self._writers):
            writer.close()
        self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    # ------------------------------------------------------------- workers

    async def add_worker(self, name: str, host: str, port: int) -> None:
        """Join ``name`` to the pool (ring membership + live connection)."""
        self.ring.add(name)
        try:
            await self.set_worker_address(name, host, port)
        except ServeError:
            self.ring.remove(name)
            raise

    async def remove_worker(self, name: str) -> None:
        """Drop ``name`` from the pool; its sources redistribute."""
        self.ring.remove(name)
        link = self._links.pop(name, None)
        if link is not None:
            await self._down_link(link, detail="worker removed from pool")

    async def set_worker_address(self, name: str, host: str,
                                 port: int) -> None:
        """(Re)connect ``name`` at a new address — ring membership (and
        therefore shard assignment) is untouched; used for hot restarts."""
        if name not in self.ring:
            raise ServeError(f"unknown worker {name!r}; add_worker first")
        old = self._links.get(name)
        if old is not None:
            old.restarts += 1
            await self._down_link(old, detail="worker restarting")
        link = _WorkerLink(name, host, port)
        if old is not None:
            link.restarts = old.restarts
            link.forwarded_lines = old.forwarded_lines
            link.forwarded_vectors = old.forwarded_vectors
            link.completed_vectors = old.completed_vectors
        self._links[name] = link
        await self._connect_link(link)

    async def mark_worker_down(self, name: str) -> None:
        """Proactively fail a worker's in-flight work (before killing it)."""
        link = self._links.get(name)
        if link is not None:
            await self._down_link(link, detail="worker going down")

    async def _connect_link(self, link: _WorkerLink) -> None:
        delay = self.connect_backoff_s
        last: Optional[Exception] = None
        for _ in range(max(1, self.connect_retries)):
            try:
                link.reader, link.writer = await asyncio.open_connection(
                    link.host, link.port, limit=STREAM_LIMIT
                )
                break
            except OSError as exc:
                last = exc
                await asyncio.sleep(delay)
                delay = min(delay * 2, 1.0)
        else:
            raise ServeError(
                f"cannot connect to worker {link.name} at "
                f"{link.host}:{link.port}: {last}"
            )
        link.up = True
        link.reader_task = asyncio.create_task(self._worker_reader(link))

    async def _down_link(self, link: _WorkerLink, detail: str) -> None:
        link.up = False
        if link.reader_task is not None:
            link.reader_task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await link.reader_task
            link.reader_task = None
        if link.writer is not None:
            with contextlib.suppress(Exception):
                link.writer.close()
            link.writer = None
        link.reader = None
        self._fail_inflight(link, detail)

    def _fail_inflight(self, link: _WorkerLink, detail: str) -> None:
        while link.inflight:
            entry = link.inflight.popleft()
            self._shed(entry.source, entry.n, "unavailable")
            if entry.future is not None:
                if not entry.future.done():
                    entry.future.set_result(
                        {"error": "unavailable", "detail": detail}
                    )
            elif entry.queue is not None:
                entry.queue.put_nowait(
                    _error_line(entry.id_token, "unavailable", detail)
                )

    # ------------------------------------------------------ worker responses

    async def _worker_reader(self, link: _WorkerLink) -> None:
        assert link.reader is not None
        try:
            while True:
                line = await link.reader.readline()
                if not line:
                    break
                if not link.inflight:
                    continue  # unsolicited line; nothing to match
                entry = link.inflight.popleft()
                self._account_response(link, entry, line)
                if entry.future is not None:
                    if not entry.future.done():
                        try:
                            entry.future.set_result(json.loads(line))
                        except json.JSONDecodeError:
                            entry.future.set_result(
                                {"error": "bad_worker_response"}
                            )
                elif entry.queue is not None:
                    entry.queue.put_nowait(line)
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            if link.up:  # worker vanished underneath us
                link.up = False
                self._fail_inflight(link, "worker connection lost")

    def _account_response(self, link: _WorkerLink, entry: _InFlight,
                          line: bytes) -> None:
        if entry.future is not None:
            return  # control traffic: not part of the classify ledger
        try:
            resp = json.loads(line)
        except json.JSONDecodeError:
            self.vectors_errored += entry.n
            return
        labels = resp.get("labels")
        if labels is None and "label" in resp:
            labels = [resp["label"]]
        if labels is not None:
            self.vectors_completed += len(labels)
            link.completed_vectors += len(labels)
            self.aggregator.observe(entry.source, labels, worker=link.name)
            if len(labels) != entry.n:  # worker rejected part of the claim
                self.vectors_errored += entry.n - len(labels)
        elif resp.get("error") == "overloaded":
            self._shed(entry.source, entry.n, "overloaded")
        else:
            self.vectors_errored += entry.n

    def _shed(self, source: str, n: int, reason: str) -> None:
        if reason == "unavailable":
            self.shed_unavailable += n
        elif reason == "backlog":
            self.shed_backlog += n
        else:
            self.shed_overloaded += n
        self.shed_by_source[source] = self.shed_by_source.get(source, 0) + n
        TELEMETRY.count(f"router.shed.{reason}", n)

    # ------------------------------------------------------------- clients

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        self._conn_seq += 1
        default_source = f"conn-{self._conn_seq}"
        responses: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.create_task(self._write_loop(responses, writer))
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                await self._dispatch(line, default_source, responses)
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            await responses.put(None)
            with contextlib.suppress(Exception):
                await writer_task
            self._writers.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()

    async def _write_loop(self, responses: asyncio.Queue,
                          writer: asyncio.StreamWriter) -> None:
        while True:
            item = await responses.get()
            if item is None:
                return
            if isinstance(item, dict):
                item = json.dumps(item).encode() + b"\n"
            try:
                writer.write(item)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                return

    # ------------------------------------------------------------ dispatch

    async def _dispatch(self, line: bytes, default_source: str,
                        responses: asyncio.Queue) -> None:
        op_match = _OP_RE.search(line)
        op = op_match.group(1).decode() if op_match else None
        if op == "classify" or (op is None and b'"op"' not in line):
            parsed = self._peek_classify(line, default_source)
            if parsed is not None:
                source, n, id_token = parsed
                await self._forward_classify(line, source, n, id_token,
                                             responses)
                return
        # Control ops and anything the fast path could not settle.
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            await responses.put({"error": "bad_request",
                                 "detail": f"invalid JSON: {exc}"})
            return
        if not isinstance(doc, dict):
            await responses.put({"error": "bad_request",
                                 "detail": "expected an object"})
            return
        op = doc.get("op", "classify")
        rid = doc.get("id")
        if op == "classify":
            n = len(doc["batch"]) if isinstance(doc.get("batch"), list) else 1
            source = str(doc.get("source", default_source))
            id_match = _ID_RE.search(line)
            await self._forward_classify(
                line, source, max(n, 1),
                id_match.group(1) if id_match else None, responses
            )
        elif op == "ping":
            await responses.put({"id": rid, "ok": True,
                                 "server": "repro-serve-router"})
        elif op == "stats":
            await responses.put({"id": rid, "stats": self.stats()})
        elif op == "fleet":
            await responses.put({"id": rid,
                                 "fleet": self.aggregator.fleet_summary()})
        elif op == "verdicts":
            source = doc.get("source")
            try:
                if source is None:
                    payload: Any = self.aggregator.verdict_streams()
                else:
                    payload = self.aggregator.source_summary(str(source))
            except ServeError as exc:
                await responses.put({"id": rid, "error": "bad_request",
                                     "detail": str(exc)})
                return
            await responses.put({"id": rid, "verdicts": payload})
        elif op == "route":
            source = str(doc.get("source", default_source))
            try:
                worker = self.ring.assign(source)
            except ServeError as exc:
                await responses.put({"id": rid, "error": "unavailable",
                                     "detail": str(exc)})
                return
            link = self._links.get(worker)
            await responses.put({
                "id": rid, "source": source, "worker": worker,
                "up": bool(link is not None and link.up),
            })
        elif op == "reload":
            await self._broadcast_reload(line, rid, responses)
        else:
            await responses.put({"id": rid, "error": "bad_request",
                                 "detail": f"unknown op {op!r}"})

    def _peek_classify(
        self, line: bytes, default_source: str
    ) -> Optional[Tuple[str, int, Optional[bytes]]]:
        """Routing facts from regex scans alone, or None to force a parse."""
        if b'"batch"' in line:
            n_match = _N_RE.search(line)
            if n_match is None:
                return None
            n = int(n_match.group(1))
            if n < 1:
                return None  # let the worker reject it coherently
        elif b'"features"' in line or b'"counts"' in line:
            n = 1
        else:
            return None
        source_match = _SOURCE_RE.search(line)
        if source_match is None:
            source = default_source if b'"source"' not in line else None
            if source is None:
                return None
        else:
            try:
                source = json.loads(b'"' + source_match.group(1) + b'"')
            except json.JSONDecodeError:
                return None
        id_match = _ID_RE.search(line)
        return source, n, id_match.group(1) if id_match else None

    async def _forward_classify(self, line: bytes, source: str, n: int,
                                id_token: Optional[bytes],
                                responses: asyncio.Queue) -> None:
        self.requests += 1
        self.vectors_received += n
        TELEMETRY.count("router.requests")
        TELEMETRY.count("router.vectors", n)
        TELEMETRY.observe("router.batch_vectors", n)
        if not self._accepting:
            await responses.put(_error_line(id_token, "shutdown",
                                            "router stopping"))
            self._shed(source, n, "unavailable")
            return
        if not self.admission.admit(source, n):
            await responses.put(_error_line(
                id_token, "overloaded", "admission rate limit; back off"
            ))
            TELEMETRY.count("router.shed.admission", n)
            return
        try:
            worker = self.ring.assign(source)
        except ServeError:
            await responses.put(_error_line(id_token, "unavailable",
                                            "no workers in pool"))
            self._shed(source, n, "unavailable")
            return
        link = self._links.get(worker)
        if link is None or not link.up or link.writer is None:
            await responses.put(_error_line(
                id_token, "unavailable", "shard restarting; retry"
            ))
            self._shed(source, n, "unavailable")
            return
        if len(link.inflight) >= self.max_worker_inflight:
            await responses.put(_error_line(
                id_token, "overloaded", "worker backlog full; back off"
            ))
            self._shed(source, n, "backlog")
            return
        link.inflight.append(_InFlight(responses, source, n, id_token))
        link.forwarded_lines += 1
        link.forwarded_vectors += n
        try:
            link.writer.write(line)
            await link.writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            link.up = False
            self._fail_inflight(link, "worker connection lost")
        TELEMETRY.gauge(f"router.worker.{worker}.inflight",
                        len(link.inflight))

    async def _broadcast_reload(self, line: bytes, rid,
                                responses: asyncio.Queue) -> None:
        loop = asyncio.get_running_loop()
        futures: Dict[str, asyncio.Future] = {}
        for name, link in sorted(self._links.items()):
            if not link.up or link.writer is None:
                continue
            fut: asyncio.Future = loop.create_future()
            link.inflight.append(_InFlight(None, "", 0, None, future=fut))
            link.writer.write(line)
            await link.writer.drain()
            futures[name] = fut
        if not futures:
            await responses.put({"id": rid, "error": "unavailable",
                                 "detail": "no live workers"})
            return
        results: Dict[str, Any] = {}
        for name, fut in futures.items():
            try:
                results[name] = await asyncio.wait_for(fut, timeout=30.0)
            except asyncio.TimeoutError:
                results[name] = {"error": "timeout"}
        ok = all(r.get("reloaded") for r in results.values())
        await responses.put({"id": rid, "reloaded": ok, "workers": results})

    # --------------------------------------------------------------- stats

    def stats(self) -> Dict[str, Any]:
        admission = self.admission.snapshot()
        shed_admission = admission["shed"]
        inflight = sum(link.inflight_vectors()
                       for link in self._links.values())
        shed_by_source: Dict[str, int] = dict(admission["shed_by_source"])
        for source, n in self.shed_by_source.items():
            shed_by_source[source] = shed_by_source.get(source, 0) + n
        return {
            "router": True,
            "accepting": self._accepting,
            "requests": self.requests,
            "vectors": {
                "received": self.vectors_received,
                "completed": self.vectors_completed,
                "shed": (shed_admission + self.shed_unavailable
                         + self.shed_backlog + self.shed_overloaded),
                "errors": self.vectors_errored,
                "inflight": inflight,
            },
            "shed": {
                "admission": shed_admission,
                "unavailable": self.shed_unavailable,
                "backlog": self.shed_backlog,
                "overloaded": self.shed_overloaded,
            },
            "shed_by_source": shed_by_source,
            "workers": {name: link.stats()
                        for name, link in sorted(self._links.items())},
            "ring": {"members": self.ring.members,
                     "vnodes": self.ring.vnodes},
            "admission": admission,
            "config": {"max_worker_inflight": self.max_worker_inflight},
        }


class RouterThread:
    """A :class:`DetectionRouter` on a private event loop in a thread.

    The synchronous twin of :class:`~repro.serve.server.ServerThread`,
    used by the CLI, the load generator and tests to embed a router in
    blocking code.  Worker management calls are marshalled onto the
    router's loop::

        rt = RouterThread()
        host, port = rt.start()
        rt.call(rt.router.add_worker, "w0", whost, wport)
    """

    def __init__(self, **kwargs) -> None:
        import threading

        self.router = DetectionRouter(**kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[Any] = None
        self._threading = threading
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.address: Optional[Tuple[str, int]] = None

    def start(self) -> Tuple[str, int]:
        if self._thread is not None:
            raise ServeError("router thread already started")
        self._loop = asyncio.new_event_loop()
        self._thread = self._threading.Thread(
            target=self._run, name="repro-serve-router", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise ServeError("router thread failed to start")
        if self._startup_error is not None:
            raise ServeError(
                f"router failed to start: {self._startup_error}"
            ) from self._startup_error
        assert self.address is not None
        return self.address

    def _run(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        try:
            self.address = self._loop.run_until_complete(self.router.start())
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            self._loop.close()
            return
        self._started.set()
        self._loop.run_forever()
        self._loop.run_until_complete(asyncio.sleep(0))
        self._loop.close()

    def call(self, coro_fn, *args, timeout: float = 30.0, **kwargs):
        """Run ``await coro_fn(*args)`` on the router's loop, synchronously."""
        if self._loop is None:
            raise ServeError("router thread is not running")
        fut = asyncio.run_coroutine_threadsafe(
            coro_fn(*args, **kwargs), self._loop
        )
        return fut.result(timeout=timeout)

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        self.call(self.router.stop)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._thread = None
        self._loop = None

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
