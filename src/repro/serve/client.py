"""Synchronous client for the ``repro-serve`` JSON-lines protocol.

Two modes:

* request/response — :meth:`ServeClient.classify`, :meth:`ping`,
  :meth:`stats`, :meth:`reload`: one line out, one line back;
* pipelined bulk — :meth:`classify_many` keeps up to ``window`` requests
  in flight on one connection, which is what lets a single client drive
  the server's micro-batcher to full batches (and what the load generator
  uses to measure throughput honestly: per-request latency is measured
  from the moment each line is sent).

The server guarantees per-connection response ordering, so the pipelined
reader matches responses to requests by ``id`` but never has to reorder.

Transport failures never escape as raw socket exceptions: connect
refusals, read timeouts, resets and mid-stream disconnects all surface as
:class:`repro.errors.ServeError`.  With ``retries > 0`` the client
transparently reconnects (with exponential backoff) and re-sends the
in-flight request — classification is idempotent, so re-sending a line
the server may or may not have processed is safe.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.errors import ServeError

__all__ = ["ServeClient", "BulkResult"]


class BulkResult:
    """Outcome of one pipelined :meth:`ServeClient.classify_many` call."""

    def __init__(self, n: int) -> None:
        self.labels: List[Optional[str]] = [None] * n
        #: per-request seconds from send to response (NaN where errored)
        self.latency_s = np.full(n, np.nan)
        self.shed = 0
        self.errors = 0
        self.seconds = 0.0

    @property
    def ok(self) -> int:
        return sum(1 for lab in self.labels if lab is not None)

    @property
    def throughput_rps(self) -> float:
        return (self.ok + self.shed) / self.seconds if self.seconds > 0 else 0.0

    def latency_percentiles_ms(self) -> Dict[str, float]:
        lat = self.latency_s[~np.isnan(self.latency_s)]
        if lat.size == 0:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0,
                    "mean": 0.0, "max": 0.0}
        return {
            "p50": float(np.percentile(lat, 50) * 1e3),
            "p95": float(np.percentile(lat, 95) * 1e3),
            "p99": float(np.percentile(lat, 99) * 1e3),
            "mean": float(lat.mean() * 1e3),
            "max": float(lat.max() * 1e3),
        }


class ServeClient:
    """A blocking TCP client for one detection server."""

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 retries: int = 0, backoff_s: float = 0.05) -> None:
        self.host = host
        self.port = port
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self._connect()

    # ------------------------------------------------------------ transport

    def _connect(self) -> None:
        """(Re)establish the connection, honoring the retry budget."""
        last: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self.backoff_s * (2 ** (attempt - 1)))
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            except OSError as exc:
                last = exc
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            self._rfile = sock.makefile("rb")
            return
        raise ServeError(
            f"cannot connect to {self.host}:{self.port} after "
            f"{self.retries + 1} attempt(s): {last}"
        ) from last

    def reconnect(self) -> None:
        """Drop the current connection and dial again (with backoff)."""
        self.close()
        self._connect()

    def _send(self, obj: Dict[str, Any]) -> None:
        try:
            self._sock.sendall(json.dumps(obj).encode() + b"\n")
        except OSError as exc:
            raise ServeError(f"send failed: {exc}") from exc

    def _recv(self) -> Dict[str, Any]:
        try:
            line = self._rfile.readline()
        except socket.timeout as exc:
            raise ServeError(
                f"read timed out after {self.timeout}s"
            ) from exc
        except OSError as exc:
            raise ServeError(f"connection lost: {exc}") from exc
        if not line:
            raise ServeError("server closed the connection")
        try:
            return json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServeError(f"malformed response: {exc}") from exc

    def request(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        """One round trip: send a request object, return the response.

        With ``retries > 0`` a reset or closed connection triggers a
        reconnect (exponential backoff) and a re-send — once per
        remaining attempt.  Timeouts are not retried: the server is up
        but slow, and re-sending would only add load.
        """
        for attempt in range(self.retries + 1):
            if attempt:
                # _connect spends its own retry budget; a failure here
                # means the server stayed down and should propagate.
                self.reconnect()
            try:
                self._send(obj)
                return self._recv()
            except ServeError as exc:
                if attempt >= self.retries or "timed out" in str(exc):
                    raise
        raise ServeError(  # pragma: no cover - loop always raises first
            f"request failed after {self.retries + 1} attempts"
        )

    # ----------------------------------------------------------- operations

    def classify(self, features: Iterable[float],
                 rid: Any = 0) -> str:
        """Classify one pre-normalized feature vector; returns the label.

        Raises :class:`ServeError` on shed (``overloaded``) or protocol
        errors — single-shot callers should treat shed as failure and back
        off; bulk callers use :meth:`classify_many`, which counts sheds.
        """
        resp = self.request({
            "op": "classify", "id": rid,
            "features": [float(v) for v in features],
        })
        return self._label_of(resp)

    def classify_batch(self, X: np.ndarray, rid: Any = 0,
                       source: Optional[str] = None) -> List[str]:
        """Classify every row of ``X`` with one batch-framed request.

        One JSON line carries the whole batch, amortizing per-line
        framing cost; the server answers with ``labels`` in row order.
        ``source`` tags the batch for router shard assignment and
        verdict aggregation.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        req: Dict[str, Any] = {
            "op": "classify", "id": rid, "n": int(X.shape[0]),
            "batch": [[float(v) for v in row] for row in X],
        }
        if source is not None:
            req["source"] = str(source)
        resp = self.request(req)
        if "labels" not in resp:
            raise ServeError(
                f"batch classification failed: {resp.get('error', 'unknown')}"
                + (f" ({resp['detail']})" if resp.get("detail") else "")
            )
        labels = [str(v) for v in resp["labels"]]
        if len(labels) != X.shape[0]:
            raise ServeError(
                f"batch response has {len(labels)} labels for "
                f"{X.shape[0]} vectors"
            )
        return labels

    def classify_counts(self, counts: Dict[str, float], rid: Any = 0) -> str:
        """Classify raw event counts (server normalizes by instructions)."""
        resp = self.request({
            "op": "classify", "id": rid,
            "counts": {k: float(v) for k, v in counts.items()},
        })
        return self._label_of(resp)

    @staticmethod
    def _label_of(resp: Dict[str, Any]) -> str:
        if "label" in resp:
            return str(resp["label"])
        raise ServeError(
            f"classification failed: {resp.get('error', 'unknown')}"
            + (f" ({resp['detail']})" if resp.get("detail") else "")
        )

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("ok"))

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"}).get("stats", {})

    def reload(self, path: str) -> Dict[str, Any]:
        resp = self.request({"op": "reload", "path": str(path)})
        if not resp.get("reloaded"):
            raise ServeError(
                f"reload failed: {resp.get('detail', resp.get('error'))}"
            )
        return resp

    # ------------------------------------------------------------ pipelined

    def classify_many(
        self, X: np.ndarray, window: int = 512
    ) -> BulkResult:
        """Classify every row of ``X``, keeping ``window`` requests in flight.

        Returns a :class:`BulkResult` with per-request labels and
        latencies; ``overloaded`` responses are tallied as ``shed`` (their
        label stays ``None``), other error responses as ``errors``.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        if window < 1:
            raise ServeError("window must be >= 1")
        n = X.shape[0]
        result = BulkResult(n)
        t_sent = np.zeros(n)
        payloads = [
            json.dumps({"op": "classify", "id": i,
                        "features": [float(v) for v in row]}).encode() + b"\n"
            for i, row in enumerate(X)
        ]
        sent = received = 0
        t0 = time.perf_counter()
        while received < n:
            burst = bytearray()
            while sent < n and sent - received < window:
                t_sent[sent] = time.perf_counter()
                burst += payloads[sent]
                sent += 1
            if burst:
                self._sock.sendall(burst)
            resp = self._recv()
            t_recv = time.perf_counter()
            rid = resp.get("id")
            if not isinstance(rid, int) or not 0 <= rid < n:
                raise ServeError(f"response with unknown id: {resp!r}")
            received += 1
            result.latency_s[rid] = t_recv - t_sent[rid]
            if "label" in resp:
                result.labels[rid] = str(resp["label"])
            elif resp.get("error") == "overloaded":
                result.shed += 1
            else:
                result.errors += 1
        result.seconds = time.perf_counter() - t0
        return result

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
