"""Token-bucket admission control for the sharded serving tier.

The router sits in front of a fixed pool of workers; without admission
control a single noisy source can fill every worker queue and turn the
whole fleet's latency to mush before the workers' own backpressure kicks
in.  :class:`AdmissionController` implements the classic two-level
token-bucket scheme:

* a **global** bucket bounding total admitted classifications/s across
  the fleet, and
* a **per-source** bucket bounding any one source's share,

both refilled continuously at their configured rate up to a burst
capacity.  Costs are *vectors* (classifications), not lines: a batched
request carrying 256 vectors spends 256 tokens, so batching cannot be
used to smuggle load past the limiter.

Every rejection is accounted — globally, per source and per reason —
and surfaced in the router's ``stats`` response; the contract is the
same as the single server's shed contract: **no silent drops**.  A
rate of 0 disables the corresponding bucket (the default: the bench
measures raw capacity; production deployments set explicit budgets).

The clock is injectable so tests are deterministic.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from repro.errors import ServeError

__all__ = ["TokenBucket", "AdmissionController"]


class TokenBucket:
    """A continuously-refilled token bucket (rate/s, burst capacity).

    ``rate <= 0`` means *unlimited*: :meth:`try_take` always succeeds.
    The bucket starts full.
    """

    __slots__ = ("rate", "burst", "tokens", "_clock", "_last")

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate < 0:
            raise ServeError("token rate must be >= 0 (0 = unlimited)")
        self.rate = float(rate)
        self.burst = float(burst if burst is not None else rate)
        if self.rate > 0 and self.burst <= 0:
            raise ServeError("burst must be > 0 when a rate is set")
        self.tokens = self.burst
        self._clock = clock
        self._last = clock()

    @property
    def unlimited(self) -> bool:
        return self.rate <= 0

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._last
        self._last = now
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)

    def try_take(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; False (and take nothing) if not."""
        if self.unlimited:
            return True
        self._refill()
        if self.tokens + 1e-9 < n:
            return False
        self.tokens -= n
        return True

    def give_back(self, n: float) -> None:
        """Return tokens taken by a decision that was later reversed."""
        if not self.unlimited:
            self.tokens = min(self.burst, self.tokens + n)

    def available(self) -> float:
        """Tokens currently available (refilled to now)."""
        if self.unlimited:
            return float("inf")
        self._refill()
        return self.tokens


class AdmissionController:
    """Two-level admission: a global bucket plus one bucket per source.

    ``admit(source, n)`` charges both buckets atomically: if the
    per-source bucket refuses, the global tokens are returned, so one
    throttled source never eats the budget of the others.  Rejections
    are tallied per source and per reason (``"global"`` vs
    ``"source"``); :meth:`snapshot` returns the full shed ledger.
    """

    def __init__(
        self,
        rate: float = 0.0,
        burst: Optional[float] = None,
        source_rate: float = 0.0,
        source_burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._clock = clock
        self.global_bucket = TokenBucket(rate, burst, clock)
        self.source_rate = float(source_rate)
        self.source_burst = source_burst
        if self.source_rate < 0:
            raise ServeError("source_rate must be >= 0 (0 = unlimited)")
        self._source_buckets: Dict[str, TokenBucket] = {}
        # Ledger (all in vectors/classifications, not lines).
        self.admitted = 0
        self.shed = 0
        self.shed_by_reason: Dict[str, int] = {}
        self.shed_by_source: Dict[str, int] = {}
        self.admitted_by_source: Dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        return not self.global_bucket.unlimited or self.source_rate > 0

    def _bucket_for(self, source: str) -> TokenBucket:
        bucket = self._source_buckets.get(source)
        if bucket is None:
            bucket = TokenBucket(self.source_rate, self.source_burst,
                                 self._clock)
            self._source_buckets[source] = bucket
        return bucket

    def admit(self, source: str, n: int = 1) -> bool:
        """True when ``n`` vectors from ``source`` fit the budget now."""
        if n < 1:
            raise ServeError("admission cost must be >= 1 vector")
        reason = None
        if not self.global_bucket.try_take(n):
            reason = "global"
        elif self.source_rate > 0 and not self._bucket_for(source).try_take(n):
            self.global_bucket.give_back(n)
            reason = "source"
        if reason is None:
            self.admitted += n
            self.admitted_by_source[source] = (
                self.admitted_by_source.get(source, 0) + n
            )
            return True
        self.shed += n
        self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + n
        self.shed_by_source[source] = self.shed_by_source.get(source, 0) + n
        return False

    def snapshot(self) -> Dict[str, Any]:
        """The shed ledger plus configuration, JSON-ready."""
        return {
            "enabled": self.enabled,
            "config": {
                "rate": self.global_bucket.rate,
                "burst": self.global_bucket.burst,
                "source_rate": self.source_rate,
                "source_burst": (self.source_burst
                                 if self.source_burst is not None
                                 else self.source_rate),
            },
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_by_reason": dict(self.shed_by_reason),
            "shed_by_source": dict(self.shed_by_source),
            "admitted_by_source": dict(self.admitted_by_source),
        }
