"""``repro-serve``: run, exercise and benchmark the detection service.

* ``repro-serve start`` — run the JSON-lines TCP server in the foreground
  (loads ``models/detector.json`` when present, otherwise trains);
* ``repro-serve classify WORKLOAD [options]`` — measure one run on the
  simulated testbed and classify it through a running server (the
  end-to-end online workflow);
* ``repro-serve bench`` — start an in-process server, replay the
  deterministic load-generator stream, and write ``BENCH_serve.json``
  (throughput, p50/p95/p99 latency, shed count); non-zero exit when shed
  exceeds ``--max-shed`` or throughput falls below ``--min-rps``; with
  ``--scale`` the same run also boots a sharded fleet (router + worker
  processes) and records a batched multi-connection ``scale`` section;
* ``repro-serve fleet`` — run the sharded tier in the foreground: a
  consistent-hash router with token-bucket admission control in front of
  N worker processes, verdict aggregation on the same endpoint;
* ``repro-serve ping`` — liveness probe against a running server or
  router.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.errors import ReproError

#: Where the train-once / serve-anywhere model artifact lives.
DEFAULT_MODEL_PATH = Path("models/detector.json")


def _load_or_train_model(path_arg: str, jobs: Optional[int] = None):
    """A fitted classifier: from ``--model``, the committed artifact, or
    a fresh training run (slow; printed loudly)."""
    from repro.ml.persistence import load_classifier

    if path_arg:
        return load_classifier(path_arg)
    if DEFAULT_MODEL_PATH.exists():
        return load_classifier(DEFAULT_MODEL_PATH)
    print("no model file found; collecting training data and fitting "
          "(use --model or commit models/detector.json to skip this)",
          file=sys.stderr)
    from repro.core.detector import FalseSharingDetector
    from repro.core.lab import Lab

    lab = Lab()
    det = FalseSharingDetector(lab).fit(jobs=jobs)
    lab.flush()
    return det.classifier


def _add_server_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7130,
                   help="TCP port (0 = ephemeral; default: %(default)s)")
    p.add_argument("--model", default="",
                   help=f"model JSON (default: {DEFAULT_MODEL_PATH} if "
                        "present, else train)")
    p.add_argument("--max-batch", type=int, default=256,
                   help="micro-batch size cap (default: %(default)s)")
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="max milliseconds a batch waits for stragglers "
                        "(default: %(default)s)")
    p.add_argument("--backlog", type=int, default=4096,
                   help="bounded request-queue size; overflow is shed "
                        "with an 'overloaded' response "
                        "(default: %(default)s)")


def _add_fleet_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workers", type=int, default=2,
                   help="worker processes (default: %(default)s)")
    p.add_argument("--admit-rate", type=float, default=0.0,
                   help="admission token rate, vectors/s over all sources "
                        "(default: unlimited)")
    p.add_argument("--admit-burst", type=float, default=0.0,
                   help="admission bucket depth in vectors "
                        "(default: 1s of --admit-rate)")
    p.add_argument("--source-rate", type=float, default=0.0,
                   help="per-source admission token rate, vectors/s "
                        "(default: unlimited)")
    p.add_argument("--majority-window", type=int, default=16,
                   help="windows per source in the fleet majority verdict "
                        "(default: %(default)s)")


def _build_fleet(args, model, port: int):
    """A configured FleetThread from CLI options (not yet started)."""
    from repro.serve.admission import AdmissionController
    from repro.serve.aggregate import VerdictAggregator
    from repro.serve.fleet import FleetThread, load_model_doc

    admission = AdmissionController(
        rate=args.admit_rate,
        burst=args.admit_burst or args.admit_rate,
        source_rate=args.source_rate,
        source_burst=args.source_rate,
    )
    return FleetThread(
        load_model_doc(model),
        workers=args.workers,
        host=args.host,
        port=port,
        admission=admission,
        aggregator=VerdictAggregator(majority_window=args.majority_window),
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        backlog=args.backlog,
    )


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Online false-sharing detection service: batched "
                    "compiled-tree inference over a JSON-lines TCP "
                    "protocol.",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    start = sub.add_parser("start", help="run the server in the foreground")
    _add_server_options(start)

    classify = sub.add_parser(
        "classify",
        help="measure a workload run on the simulated testbed and "
             "classify it through a running server",
    )
    classify.add_argument("workload")
    classify.add_argument("-t", "--threads", type=int, default=6)
    classify.add_argument("-m", "--mode", default="good")
    classify.add_argument("-n", "--size", type=int, default=0)
    classify.add_argument("--pattern", default="random")
    classify.add_argument("--input", default="")
    classify.add_argument("--opt", default="-O2")
    classify.add_argument("--host", default="127.0.0.1")
    classify.add_argument("--port", type=int, default=7130)
    classify.add_argument("--windows", type=int, default=0,
                          help="stream N periodic samples through the "
                               "window aggregator instead of one "
                               "whole-run vector")

    bench = sub.add_parser(
        "bench",
        help="in-process server + deterministic load generator; writes "
             "BENCH_serve.json",
    )
    _add_server_options(bench)
    bench.add_argument("--smoke", action="store_true",
                       help="small request count for CI (default: full)")
    bench.add_argument("--requests", type=int, default=0,
                       help="request count (default: 2000 smoke / "
                            "20000 full)")
    bench.add_argument("--window", type=int, default=512,
                       help="pipelined requests in flight "
                            "(default: %(default)s)")
    bench.add_argument("--output", default="BENCH_serve.json",
                       help="result document path (default: %(default)s)")
    bench.add_argument("--max-shed", type=int, default=0,
                       help="fail (exit 1) when more requests are shed "
                            "(default: %(default)s)")
    bench.add_argument("--min-rps", type=float, default=0.0,
                       help="fail (exit 1) below this throughput "
                            "(default: no floor)")
    bench.add_argument("--results-store", default="",
                       help="also ingest the result document into this "
                            "repro-results store")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--scale", action="store_true",
                       help="also boot the sharded fleet and record a "
                            "batched multi-connection 'scale' section")
    bench.add_argument("--workers", type=int, default=2,
                       help="fleet worker processes for --scale "
                            "(default: %(default)s)")
    bench.add_argument("--connections", type=int, default=4,
                       help="concurrent loadgen connections for --scale "
                            "(default: %(default)s)")
    bench.add_argument("--scale-batch", type=int, default=256,
                       help="vectors per batch-framed line for --scale "
                            "(default: %(default)s)")
    bench.add_argument("--scale-vectors", type=int, default=0,
                       help="vector count for --scale (default: 10x the "
                            "single-server request count)")
    bench.add_argument("--min-scale-vps", type=float, default=0.0,
                       help="fail (exit 1) when the scale section falls "
                            "below this classifications/s floor")
    bench.add_argument("--min-speedup", type=float, default=0.0,
                       help="fail (exit 1) when scale throughput is below "
                            "this multiple of the same-run single-server "
                            "throughput")

    fleet = sub.add_parser(
        "fleet",
        help="run the sharded tier in the foreground: router + admission "
             "control + N worker processes + verdict aggregation",
    )
    _add_server_options(fleet)
    _add_fleet_options(fleet)

    ping = sub.add_parser("ping", help="liveness probe")
    ping.add_argument("--host", default="127.0.0.1")
    ping.add_argument("--port", type=int, default=7130)

    args = parser.parse_args(argv)
    try:
        if args.cmd == "start":
            return _cmd_start(args)
        if args.cmd == "classify":
            return _cmd_classify(args)
        if args.cmd == "bench":
            return _cmd_bench(args)
        if args.cmd == "fleet":
            return _cmd_fleet(args)
        if args.cmd == "ping":
            return _cmd_ping(args)
        parser.error(f"unknown command {args.cmd!r}")
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_start(args) -> int:
    import asyncio

    from repro.serve.server import DetectionServer

    model = _load_or_train_model(args.model)
    server = DetectionServer(
        model,
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        backlog=args.backlog,
    )

    async def _run() -> None:
        host, port = await server.start()
        stats = server.stats()
        print(f"repro-serve listening on {host}:{port} "
              f"(tree: {stats['model']['nodes']} nodes, "
              f"batch<= {args.max_batch}, backlog {args.backlog})")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("shutting down (draining in-flight requests)")
        import asyncio as _a

        _a.run(server.stop(drain=True))
    return 0


def _cmd_classify(args) -> int:
    from repro.cli import _build_config, _resolve_target
    from repro.core.lab import Lab
    from repro.pmu.events import TABLE2_EVENTS
    from repro.serve.client import ServeClient
    from repro.serve.stream import WindowAggregator
    from repro.utils.stats import majority

    target, kind = _resolve_target(args.workload)
    cfg = _build_config(target, kind, args)
    lab = Lab()
    with ServeClient(args.host, args.port) as client:
        if args.windows:
            result = lab.simulate(target, cfg)
            agg = WindowAggregator(window=max(result.seconds, 1e-9)
                                   / args.windows)
            windows = agg.add_stream(
                lab.sampler.measure_stream(result, TABLE2_EVENTS,
                                           windows=args.windows,
                                           run_id=cfg.run_id())
            )
            labels = [client.classify(w.features, rid=w.index)
                      for w in windows]
            for w, label in zip(windows, labels):
                print(f"  window {w.index:3d} "
                      f"[{w.t_start * 1e3:8.3f}ms - "
                      f"{w.t_end * 1e3:8.3f}ms] -> {label}")
            label = majority(labels)
        else:
            vec = lab.measure(target, cfg, TABLE2_EVENTS)
            label = client.classify_counts(vec.values)
    lab.flush()
    print(f"{args.workload} [{cfg.run_id()}] -> {label}")
    return 0 if label == "good" else 1


def _cmd_bench(args) -> int:
    from repro.serve.inference import as_compiled
    from repro.serve.loadgen import (
        bench_payload,
        generate_stream,
        measure_predict_batch,
        run_loadgen,
        run_scale_loadgen,
    )
    from repro.serve.server import ServerThread

    n = args.requests or (2_000 if args.smoke else 20_000)
    model = _load_or_train_model(args.model)
    compiled = as_compiled(model)
    print(f"generating {n} request vectors (deterministic, seed "
          f"{args.seed})...")
    X, tags = generate_stream(n, seed=args.seed)
    vps = measure_predict_batch(compiled, X)
    thread = ServerThread(
        compiled,
        host=args.host,
        port=0,  # ephemeral: the bench must not collide with a real server
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        backlog=args.backlog,
    )
    host, port = thread.start()
    try:
        result = run_loadgen(host, port, X, window=args.window)
    finally:
        thread.stop()

    scale = None
    if args.scale:
        import numpy as np

        from repro.serve.fleet import FleetThread, load_model_doc

        n_scale = args.scale_vectors or 10 * n
        reps = -(-n_scale // X.shape[0])
        X_scale = np.tile(X, (reps, 1))[:n_scale]
        tags_scale = (tags * reps)[:n_scale]
        print(f"scale: {args.workers} workers, {args.connections} "
              f"connections, {n_scale} vectors in batches of "
              f"{args.scale_batch}...")
        fleet_thread = FleetThread(
            load_model_doc(model),
            workers=args.workers,
            host=args.host,
            port=0,
            max_batch=args.max_batch,
            max_wait_s=args.max_wait_ms / 1e3,
            backlog=args.backlog,
        )
        fhost, fport = fleet_thread.start()
        try:
            scale = run_scale_loadgen(
                fhost, fport, X_scale, tags_scale,
                connections=args.connections, batch=args.scale_batch,
            )
        finally:
            fleet_thread.stop()

    payload = bench_payload(result, vps,
                            mode="smoke" if args.smoke else "full",
                            scale=scale, scale_shed_ceiling=args.max_shed)
    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    if args.results_store:
        from repro.results.store import ResultsStore

        with ResultsStore(args.results_store) as store:
            outcome = store.ingest(payload, source=out.name)
        print(f"results: run #{outcome.run_id} [{outcome.kind}] -> "
              f"{args.results_store}"
              + ("" if outcome.fresh else " (deduped)"))
    lat = result.latency_ms
    print(f"result: {out}")
    print(f"  throughput      {result.throughput_rps:12,.0f} req/s "
          f"({result.requests} requests, window {result.window})")
    print(f"  latency ms      p50 {lat['p50']:.3f}  p95 {lat['p95']:.3f}  "
          f"p99 {lat['p99']:.3f}")
    print(f"  shed            {result.shed}")
    print(f"  predict_batch   {vps:12,.0f} vectors/s (offline)")
    if scale is not None:
        slat = scale.latency_ms
        print(f"  scale           {scale.throughput_vps:12,.0f} vectors/s "
              f"({scale.vectors} vectors, {scale.connections} connections, "
              f"batch {scale.batch})")
        print(f"  scale latency   p50 {slat['p50']:.3f}  "
              f"p95 {slat['p95']:.3f}  p99 {slat['p99']:.3f} (ms/line)")
        print(f"  scale shed      {scale.shed}  errors {scale.errors}")
    if result.errors:
        print(f"error: {result.errors} request(s) failed", file=sys.stderr)
        return 1
    if result.shed > args.max_shed:
        print(f"serve bench: FAIL (shed {result.shed} > "
              f"--max-shed {args.max_shed})", file=sys.stderr)
        return 1
    if args.min_rps and result.throughput_rps < args.min_rps:
        print(f"serve bench: FAIL (throughput {result.throughput_rps:,.0f} "
              f"< --min-rps {args.min_rps:,.0f})", file=sys.stderr)
        return 1
    if scale is not None:
        if scale.errors:
            print(f"serve bench: FAIL (scale errors {scale.errors})",
                  file=sys.stderr)
            return 1
        if scale.completed + scale.shed != scale.vectors:
            print(f"serve bench: FAIL (accounting: completed "
                  f"{scale.completed} + shed {scale.shed} != "
                  f"{scale.vectors} vectors)", file=sys.stderr)
            return 1
        if scale.shed > args.max_shed:
            print(f"serve bench: FAIL (scale shed {scale.shed} > "
                  f"--max-shed {args.max_shed})", file=sys.stderr)
            return 1
        if args.min_scale_vps and scale.throughput_vps < args.min_scale_vps:
            print(f"serve bench: FAIL (scale throughput "
                  f"{scale.throughput_vps:,.0f} < --min-scale-vps "
                  f"{args.min_scale_vps:,.0f})", file=sys.stderr)
            return 1
        speedup = (scale.throughput_vps / result.throughput_rps
                   if result.throughput_rps > 0 else 0.0)
        if args.min_speedup and speedup < args.min_speedup:
            print(f"serve bench: FAIL (scale speedup {speedup:.2f}x < "
                  f"--min-speedup {args.min_speedup}x)", file=sys.stderr)
            return 1
    print("serve bench: PASS")
    return 0


def _cmd_fleet(args) -> int:
    import time

    model = _load_or_train_model(args.model)
    fleet_thread = _build_fleet(args, model, port=args.port)
    host, port = fleet_thread.start()
    stats = fleet_thread.stats()
    sup = stats["supervisor"]
    print(f"repro-serve fleet listening on {host}:{port} "
          f"({sup['alive']}/{sup['workers']} workers, "
          f"batch<= {args.max_batch}, "
          f"admission {'on' if args.admit_rate or args.source_rate else 'off'})")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down fleet")
        fleet_thread.stop()
    return 0


def _cmd_ping(args) -> int:
    from repro.serve.client import ServeClient

    with ServeClient(args.host, args.port) as client:
        ok = client.ping()
    print("ok" if ok else "no response")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(serve_main())
