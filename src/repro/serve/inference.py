"""Compiled-tree inference: the fitted J48 tree as flat numpy arrays.

The recursive :class:`~repro.ml.tree_model.TreeNode` is the right shape for
learning, pruning and rendering, but classifying one vector at a time in
Python is far too slow for an online service.  :class:`CompiledTree`
flattens the tree into parallel arrays — feature index, threshold, child
pointers and leaf labels — and walks *all* rows of a batch level by level
with numpy indexing.  Every comparison is the same ``x[f] <= t`` the
recursive walker performs, so the compiled output is bit-identical to
:meth:`repro.ml.c45.C45Classifier.predict` (asserted by tests and by
:meth:`CompiledTree.verify`).

Nodes are laid out in preorder (node, left subtree, right subtree), which
makes the layout a pure function of the tree structure: two structurally
equal trees — e.g. a model and its JSON-persistence round trip — compile
to identical arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import DatasetError, NotFittedError
from repro.ml.tree_model import TreeNode

__all__ = ["CompiledTree", "as_compiled"]


@dataclass(frozen=True, eq=False)
class CompiledTree:
    """A binary decision tree over continuous features, as flat arrays.

    ``feature[i] >= 0`` marks an internal node testing
    ``x[feature[i]] <= threshold[i]`` (true goes to ``left[i]``, false to
    ``right[i]``); ``feature[i] == -1`` marks a leaf whose label is
    ``classes[leaf[i]]``.  Node 0 is the root; children follow their parent
    in preorder.
    """

    feature: np.ndarray   #: (n_nodes,) intp, -1 on leaves
    threshold: np.ndarray  #: (n_nodes,) float64, 0.0 on leaves
    left: np.ndarray      #: (n_nodes,) intp, 0 on leaves
    right: np.ndarray     #: (n_nodes,) intp, 0 on leaves
    leaf: np.ndarray      #: (n_nodes,) intp index into classes, -1 internal
    classes: Tuple[str, ...]
    #: Leaf labels as an object array so ``predict_batch`` returns the very
    #: same ``str`` objects the recursive walker does.
    _labels: np.ndarray = field(repr=False, compare=False)

    # ------------------------------------------------------------- building

    @classmethod
    def from_tree(
        cls,
        root: TreeNode,
        classes: Optional[Sequence[str]] = None,
    ) -> "CompiledTree":
        """Flatten ``root`` (preorder) into a :class:`CompiledTree`.

        ``classes`` fixes the label index space (e.g. a classifier's
        ``classes_``); leaf labels not listed there are appended, so any
        well-formed tree compiles.
        """
        label_index = {c: i for i, c in enumerate(classes or ())}
        labels: List[str] = list(classes or ())

        feature: List[int] = []
        threshold: List[float] = []
        left: List[int] = []
        right: List[int] = []
        leaf: List[int] = []

        def alloc(node: TreeNode) -> int:
            idx = len(feature)
            if node.is_leaf:
                code = label_index.get(node.label)
                if code is None:
                    code = label_index[node.label] = len(labels)
                    labels.append(node.label)
                feature.append(-1)
                threshold.append(0.0)
                left.append(0)
                right.append(0)
                leaf.append(code)
                return idx
            if node.left is None or node.right is None:
                raise DatasetError("internal tree node is missing a child")
            feature.append(int(node.feature))
            threshold.append(float(node.threshold))
            left.append(0)
            right.append(0)
            leaf.append(-1)
            left[idx] = alloc(node.left)
            right[idx] = alloc(node.right)
            return idx

        alloc(root)
        return cls(
            feature=np.asarray(feature, dtype=np.intp),
            threshold=np.asarray(threshold, dtype=np.float64),
            left=np.asarray(left, dtype=np.intp),
            right=np.asarray(right, dtype=np.intp),
            leaf=np.asarray(leaf, dtype=np.intp),
            classes=tuple(labels),
            _labels=np.array(labels, dtype=object),
        )

    @classmethod
    def from_classifier(cls, clf) -> "CompiledTree":
        """Compile a fitted :class:`~repro.ml.c45.C45Classifier`."""
        if getattr(clf, "root_", None) is None:
            raise NotFittedError("cannot compile an unfitted classifier")
        return cls.from_tree(clf.root_, classes=clf.classes_)

    # ------------------------------------------------------------ inference

    @property
    def n_nodes(self) -> int:
        return int(self.feature.size)

    @property
    def n_leaves(self) -> int:
        return int((self.feature < 0).sum())

    @property
    def n_features(self) -> int:
        """Smallest feature-vector width this tree can classify."""
        internal = self.feature[self.feature >= 0]
        return int(internal.max()) + 1 if internal.size else 0

    def predict_indices(self, X: np.ndarray) -> np.ndarray:
        """Class index (into :attr:`classes`) for every row of ``X``."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        if X.ndim != 2:
            raise DatasetError(f"expected a 2-d batch, got shape {X.shape}")
        if X.shape[1] < self.n_features:
            raise DatasetError(
                f"batch has {X.shape[1]} features; tree tests feature "
                f"index {self.n_features - 1}"
            )
        idx = np.zeros(X.shape[0], dtype=np.intp)
        # Rows still sitting on an internal node.  Each pass advances every
        # active row one level, so the loop runs depth() times regardless
        # of batch size.  NaN features compare False, taking the right
        # branch — exactly like the recursive walker.
        rows = np.flatnonzero(self.feature[idx] >= 0)
        while rows.size:
            node = idx[rows]
            go_left = X[rows, self.feature[node]] <= self.threshold[node]
            idx[rows] = np.where(go_left, self.left[node], self.right[node])
            rows = rows[self.feature[idx[rows]] >= 0]
        return self.leaf[idx]

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        """Labels for every row of ``X``; bit-identical to the recursive walk."""
        return self._labels[self.predict_indices(X)]

    # ----------------------------------------------------------- validation

    def verify(self, root: TreeNode, X: np.ndarray) -> bool:
        """True when this compilation matches ``root``'s recursive walk on X."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        recursive = np.array([root.predict_one(row) for row in X],
                             dtype=object)
        return bool(np.array_equal(self.predict_batch(X), recursive))

    def to_dict(self) -> dict:
        """Plain-data view of the arrays (tests, debugging, manifests)."""
        return {
            "feature": self.feature.tolist(),
            "threshold": self.threshold.tolist(),
            "left": self.left.tolist(),
            "right": self.right.tolist(),
            "leaf": self.leaf.tolist(),
            "classes": list(self.classes),
        }


def as_compiled(model: Union[CompiledTree, TreeNode, str, "object"]) -> CompiledTree:
    """Coerce any tree-ish model into a :class:`CompiledTree`.

    Accepts a :class:`CompiledTree` (returned as-is), a fitted
    :class:`~repro.ml.c45.C45Classifier`, a bare
    :class:`~repro.ml.tree_model.TreeNode`, or a path to a model JSON saved
    by :mod:`repro.ml.persistence`.
    """
    if isinstance(model, CompiledTree):
        return model
    if isinstance(model, TreeNode):
        return CompiledTree.from_tree(model)
    if isinstance(model, (str, bytes)) or hasattr(model, "__fspath__"):
        from repro.ml.persistence import load_classifier

        return CompiledTree.from_classifier(load_classifier(model))
    if hasattr(model, "root_"):
        return CompiledTree.from_classifier(model)
    raise DatasetError(f"cannot compile {type(model).__name__} into a tree")
