"""Windowed aggregation of raw PMU samples into feature vectors.

An online monitor does not see one tidy :class:`EventVector` per program —
it sees a stream of periodic counter readings from many sources (one per
monitored pid/core).  :class:`WindowAggregator` turns that stream back into
the shape the classifier was trained on: raw counts summed over a time
window, normalized by instructions retired, in Table 2 feature order.

Windows sit on an absolute grid: window ``k`` of a source covers
``[k * slide, k * slide + window)`` seconds.  ``slide == window`` gives
tumbling (disjoint) windows; ``slide < window`` gives sliding (overlapping)
ones.  The grid makes aggregation a pure function of the samples — two
replays of the same stream emit identical windows — which is what lets the
load generator and tests be deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PMUError, ServeError
from repro.pmu.counters import EventVector
from repro.pmu.events import Event

__all__ = ["StreamWindow", "WindowAggregator"]


@dataclass(frozen=True)
class StreamWindow:
    """One completed window of one source, ready for classification."""

    source: str
    index: int          #: window number on the source's grid
    t_start: float
    t_end: float
    samples: int        #: raw samples aggregated into this window
    vector: EventVector
    features: np.ndarray  #: instruction-normalized, feature-event order

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "index": self.index,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "samples": self.samples,
            "features": [float(v) for v in self.features],
        }


@dataclass
class _SourceState:
    """Open windows of one source, keyed by grid index."""

    #: window index -> (summed counts, sample count)
    open: Dict[int, Tuple[Dict[str, float], int]] = field(default_factory=dict)
    last_t: float = float("-inf")
    emitted_through: int = -1  #: highest window index already emitted


class WindowAggregator:
    """Aggregates per-source count samples into classifier-ready windows.

    Parameters
    ----------
    features:
        The events (in order) whose normalized counts form the feature
        vector — by default the paper's 15 Table 2 features.
    window, slide:
        Window length and grid step in seconds.  ``slide`` defaults to
        ``window`` (tumbling); ``slide < window`` produces overlapping
        sliding windows.

    Feed it with :meth:`add` (source, timestamp, raw counts) or
    :meth:`add_vector` (an :class:`EventVector` whose meta carries
    ``source`` and ``t``, e.g. from
    :meth:`repro.pmu.sampler.PMUSampler.measure_stream`).  Both return the
    windows *completed* by the new sample; :meth:`flush` drains the
    still-open remainder at end of stream.

    Per-source timestamps must be non-decreasing (the transport is assumed
    ordered per source; sources are independent).  A window whose summed
    instruction count is zero cannot be normalized and is dropped with a
    ``dropped`` tally rather than emitted.
    """

    def __init__(
        self,
        features: Optional[Sequence[Event]] = None,
        window: float = 1.0,
        slide: Optional[float] = None,
    ) -> None:
        if features is None:
            from repro.core.training import FEATURES

            features = FEATURES
        if window <= 0:
            raise ServeError("window must be > 0 seconds")
        slide = window if slide is None else slide
        if not 0 < slide <= window:
            raise ServeError("slide must be in (0, window]")
        self.features = list(features)
        self.window = float(window)
        self.slide = float(slide)
        self.dropped = 0
        self._sources: Dict[str, _SourceState] = {}

    # ------------------------------------------------------------- feeding

    def add(
        self, source: str, t: float, counts: Dict[str, float]
    ) -> List[StreamWindow]:
        """Ingest one sample; return windows it completes (oldest first)."""
        state = self._sources.setdefault(str(source), _SourceState())
        if t < 0:
            raise ServeError("sample timestamps must be >= 0")
        if t < state.last_t:
            raise ServeError(
                f"out-of-order sample for source {source!r}: "
                f"t={t} after t={state.last_t}"
            )
        state.last_t = t
        # Every window whose span contains t accumulates this sample:
        # k * slide <= t < k * slide + window.  The division only seeds the
        # search; the loop below settles boundary cases exactly, so float
        # rounding in t/slide can never put a sample in a window whose span
        # excludes it (or in none at all).
        first = int(np.floor(max(t - self.window, 0.0) / self.slide))
        while first * self.slide + self.window <= t:
            first += 1
        last = max(int(np.floor(t / self.slide)), first)
        while (last + 1) * self.slide <= t:
            last += 1
        for k in range(first, last + 1):
            if k <= state.emitted_through:
                continue  # late sample for an already-emitted window
            acc, n = state.open.get(k, (None, 0))
            if acc is None:
                acc = {}
            for name, value in counts.items():
                acc[name] = acc.get(name, 0.0) + float(value)
            state.open[k] = (acc, n + 1)
        # Windows that can no longer receive samples (their end <= t) close.
        return self._emit_closed(source, state, horizon=t)

    def add_vector(self, vec: EventVector) -> List[StreamWindow]:
        """Ingest a measured :class:`EventVector` (meta: ``source``, ``t``)."""
        source = str(vec.meta.get("source", vec.meta.get("run", "default")))
        t = vec.meta.get("t")
        if t is None:
            raise ServeError("EventVector.meta lacks a 't' timestamp")
        return self.add(source, float(t), vec.values)

    def add_stream(self, vectors: Iterable[EventVector]) -> List[StreamWindow]:
        """Ingest a whole iterable of vectors and flush: all windows, ordered."""
        out: List[StreamWindow] = []
        for vec in vectors:
            out.extend(self.add_vector(vec))
        out.extend(self.flush())
        return out

    # ------------------------------------------------------------- emitting

    def _emit_closed(
        self, source: str, state: _SourceState, horizon: float
    ) -> List[StreamWindow]:
        done = sorted(
            k for k in state.open if k * self.slide + self.window <= horizon
        )
        return [w for k in done
                if (w := self._emit(source, state, k)) is not None]

    def _emit(
        self, source: str, state: _SourceState, k: int
    ) -> Optional[StreamWindow]:
        acc, n = state.open.pop(k)
        state.emitted_through = max(state.emitted_through, k)
        t0 = k * self.slide
        vec = EventVector(
            acc,
            meta={"source": source, "window": k,
                  "t_start": t0, "t_end": t0 + self.window, "samples": n},
        )
        try:
            feats = vec.features(self.features)
        except PMUError:
            # No instructions retired in the window (idle source): nothing
            # to normalize by, nothing the classifier could say.
            self.dropped += 1
            return None
        return StreamWindow(
            source=source,
            index=k,
            t_start=t0,
            t_end=t0 + self.window,
            samples=n,
            vector=vec,
            features=feats,
        )

    def flush(self) -> List[StreamWindow]:
        """Emit every still-open (partial) window, sources sorted, oldest first."""
        out: List[StreamWindow] = []
        for source in sorted(self._sources):
            state = self._sources[source]
            for k in sorted(state.open):
                w = self._emit(source, state, k)
                if w is not None:
                    out.append(w)
        return out

    @property
    def open_windows(self) -> int:
        return sum(len(s.open) for s in self._sources.values())

    @property
    def sources(self) -> List[str]:
        return sorted(self._sources)
