"""Shadow-memory cache-contention detection (Zhao et al., VEE'11 [33]).

This is the paper's verification oracle.  It tracks, per cache line, which
threads hold a copy and which 4-byte slots of the line each thread has
touched during its holding period.  A write invalidates other holders; when
an invalidated thread touches the line again it suffers a *contention miss*,
classified as **false sharing** when the invalidating writes touched only
slots disjoint from the victim's, and **true sharing** otherwise.

The reported metric is the paper's: ``false sharing rate = false-sharing
misses / instructions executed``, with rate > 1e-3 meaning false sharing is
present.  Faithfully to [33], the tool refuses more than 8 threads and slows
the monitored program down about 5x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import BaselineError
from repro.trace.access import ProgramTrace
from repro.trace.streams import DEFAULT_CHUNK, interleave

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel import ExecutionEngine
    from repro.suites.base import SuiteCase

#: [33]'s decision threshold on the false-sharing rate.
FS_RATE_THRESHOLD = 1e-3

#: [33]'s instrumentation cannot shadow more than 8 threads.
MAX_THREADS = 8

#: Reported slowdown of the dynamic-instrumentation approach.
SLOWDOWN = 5.0


@dataclass
class ShadowReport:
    """Outcome of one shadowed run.

    ``per_line`` (when collected) maps cache-line index to its
    ``(fs_misses, ts_misses)`` counts — line-level attribution from the
    instrumentation-based tool, comparable against the sampling-based
    c2c report.
    """

    fs_misses: int
    ts_misses: int
    cold_misses: int
    instructions: int
    nthreads: int
    per_line: Dict[int, tuple] = None

    def hottest_fs_lines(self, n: int = 8):
        """Lines with the most false-sharing misses, hottest first."""
        if not self.per_line:
            return []
        items = [(line, fs, ts) for line, (fs, ts) in self.per_line.items()
                 if fs > 0]
        items.sort(key=lambda x: x[1], reverse=True)
        return items[:n]

    @property
    def fs_rate(self) -> float:
        """False-sharing misses per instruction (the paper's rate)."""
        if self.instructions <= 0:
            raise BaselineError("no instructions executed")
        return self.fs_misses / self.instructions

    @property
    def contention_rate(self) -> float:
        if self.instructions <= 0:
            raise BaselineError("no instructions executed")
        return (self.fs_misses + self.ts_misses) / self.instructions

    @property
    def has_false_sharing(self) -> bool:
        """[33]'s verdict: rate above 1e-3."""
        return self.fs_rate > FS_RATE_THRESHOLD


class ShadowMemoryDetector:
    """Word-granular (4-byte slot) sharing analysis over a program trace.

    ``fast=True`` (the default) pre-filters the trace with numpy before the
    scalar state machine runs, using two exact reductions:

    * **private lines** — shadow state is per cache line, so a line touched
      by a single thread can never see an invalidation: its whole access
      stream contributes exactly one cold miss and is dropped (the miss is
      added back arithmetically).  Streaming workloads are dominated by
      thread-private data, so this removes most of the trace.
    * **repeated words** — an access is a shadow-state no-op when its
      predecessor in the filtered stream is the *same thread* touching the
      *same 4-byte word* and the access is a read or follows a write: the
      thread already holds the line, the slot bit is already set, and a
      repeated write finds no other holders left to invalidate.  Dropped
      private-line accesses cannot hide an intervening invalidation, since
      they never touch a shared line's state.

    Every miss-classification decision therefore survives unchanged, so the
    filtered run is bit-identical to the reference one.
    """

    def __init__(self, max_threads: int = MAX_THREADS,
                 track_lines: bool = False,
                 fast: "bool | str" = True) -> None:
        self.max_threads = max_threads
        self.track_lines = track_lines
        # Also accept the simulator's drive-strategy vocabulary so a single
        # ``fast`` setting can be threaded through Lab and oracle alike:
        # ``'ref'`` selects the reference walk, any vectorized strategy
        # (``'auto'``/``'runs'``/``'lines'``) enables the numpy prefilter.
        self.fast = fast if isinstance(fast, bool) else fast != "ref"

    def run(
        self, program: ProgramTrace, chunk: int = DEFAULT_CHUNK
    ) -> ShadowReport:
        nt = program.nthreads
        if nt > self.max_threads:
            raise BaselineError(
                f"shadow tool handles at most {self.max_threads} threads; "
                f"program has {nt} (same limitation as [33])"
            )
        merged = interleave(program, chunk=chunk)
        cores_a = merged.core
        addrs_a = merged.addr
        writes_a = merged.is_write
        cold_private = 0
        if self.fast and cores_a.size:
            # Drop every access to a line only one thread ever touches: it
            # yields exactly one cold miss and cannot affect shared lines.
            lines = addrs_a >> 6
            uniq, inv = np.unique(lines, return_inverse=True)
            touched = np.zeros(uniq.size * nt, dtype=bool)
            touched[inv * nt + cores_a] = True
            n_threads = touched.reshape(uniq.size, nt).sum(axis=1)
            shared_line = n_threads > 1
            cold_private = int(uniq.size - np.count_nonzero(shared_line))
            keep = shared_line[inv]
            cores_a = cores_a[keep]
            addrs_a = addrs_a[keep]
            writes_a = writes_a[keep]
            if cores_a.size:
                # Drop repeated same-thread same-word touches (reads, or
                # writes directly after a write).
                words = addrs_a >> 2
                skip = np.zeros(cores_a.size, dtype=bool)
                skip[1:] = (
                    (cores_a[1:] == cores_a[:-1])
                    & (words[1:] == words[:-1])
                    & (~writes_a[1:] | writes_a[:-1])
                )
                keep = ~skip
                cores_a = cores_a[keep]
                addrs_a = addrs_a[keep]
                writes_a = writes_a[keep]
        cores = cores_a.tolist()
        addrs = addrs_a.tolist()
        writes = writes_a.tolist()

        holders: Dict[int, int] = {}       # line -> bitmask of holding threads
        tmasks: Dict[int, list] = {}       # line -> per-thread touched-slot mask
        invalmask: Dict[int, list] = {}    # line -> per-thread invalidator slots
        fs = ts = 0
        cold = cold_private
        all_zero = [0] * nt
        per_line: Dict[int, list] = {} if self.track_lines else None

        for t, addr, w in zip(cores, addrs, writes):
            line = addr >> 6
            slot = 1 << ((addr >> 2) & 15)
            bit = 1 << t
            held = holders.get(line, 0)
            masks = tmasks.get(line)
            if masks is None:
                masks = list(all_zero)
                tmasks[line] = masks
            if not held & bit:
                # This thread does not hold the line: a miss.
                inv = invalmask.get(line)
                if inv is not None and inv[t]:
                    # Invalidation-induced: false or true sharing?
                    if inv[t] & (masks[t] | slot):
                        ts += 1
                        if per_line is not None:
                            per_line.setdefault(line, [0, 0])[1] += 1
                    else:
                        fs += 1
                        if per_line is not None:
                            per_line.setdefault(line, [0, 0])[0] += 1
                    inv[t] = 0
                    masks[t] = 0  # new holding period
                else:
                    cold += 1
                held |= bit
            masks[t] |= slot
            if w:
                # Invalidate all other holders, recording what we wrote.
                others = held & ~bit
                if others:
                    inv = invalmask.get(line)
                    if inv is None:
                        inv = list(all_zero)
                        invalmask[line] = inv
                    for u in range(nt):
                        if others & (1 << u):
                            inv[u] |= slot
                    held = bit
            holders[line] = held
        return ShadowReport(
            fs_misses=fs,
            ts_misses=ts,
            cold_misses=cold,
            instructions=program.total_instructions,
            nthreads=nt,
            per_line=(None if per_line is None
                      else {k: tuple(v) for k, v in per_line.items()}),
        )


    def run_store(self, path, chunk: int = DEFAULT_CHUNK) -> ShadowReport:
        """Shadow a program persisted as a binary trace store.

        The store is opened as read-only memmap views (zero-copy), so the
        oracle's numpy prefilter reduces file-backed pages directly; only
        the filtered residue is ever materialized for the scalar state
        machine.  Results are identical to :meth:`run` on the in-memory
        program the store was written from.
        """
        from repro.trace.store import open_program

        return self.run(open_program(path), chunk=chunk)

    def run_many(
        self,
        cases: Sequence[Tuple[str, "SuiteCase"]],
        chunk: int = DEFAULT_CHUNK,
        jobs: Optional[int] = None,
        engine: Optional["ExecutionEngine"] = None,
    ) -> List[ShadowReport]:
        """Shadow ``(program_name, case)`` pairs, optionally in parallel.

        Oracle runs are independent and deterministic, so fanning them over
        worker processes returns the exact reports a serial sweep would, in
        input order.  Line-level tracking is not collected in batch mode.
        """
        if engine is None:
            from repro.parallel import ExecutionEngine

            engine = ExecutionEngine(jobs)
        counts = engine.shadow_batch(list(cases), chunk, self.max_threads,
                                     fast=self.fast)
        return [
            ShadowReport(fs_misses=fs, ts_misses=tsm, cold_misses=cold,
                         instructions=instr, nthreads=case.threads)
            for (_, case), (fs, tsm, cold, instr) in zip(cases, counts)
        ]


def false_sharing_rate(
    program: ProgramTrace, chunk: int = DEFAULT_CHUNK
) -> float:
    """One-shot convenience: the [33] false-sharing rate of a trace."""
    return ShadowMemoryDetector().run(program, chunk=chunk).fs_rate
