"""Shadow-memory cache-contention detection (Zhao et al., VEE'11 [33]).

This is the paper's verification oracle.  It tracks, per cache line, which
threads hold a copy and which 4-byte slots of the line each thread has
touched during its holding period.  A write invalidates other holders; when
an invalidated thread touches the line again it suffers a *contention miss*,
classified as **false sharing** when the invalidating writes touched only
slots disjoint from the victim's, and **true sharing** otherwise.

The reported metric is the paper's: ``false sharing rate = false-sharing
misses / instructions executed``, with rate > 1e-3 meaning false sharing is
present.  Faithfully to [33], the tool refuses more than 8 threads and slows
the monitored program down about 5x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import BaselineError
from repro.trace.access import ProgramTrace
from repro.trace.streams import DEFAULT_CHUNK, interleave

#: [33]'s decision threshold on the false-sharing rate.
FS_RATE_THRESHOLD = 1e-3

#: [33]'s instrumentation cannot shadow more than 8 threads.
MAX_THREADS = 8

#: Reported slowdown of the dynamic-instrumentation approach.
SLOWDOWN = 5.0


@dataclass
class ShadowReport:
    """Outcome of one shadowed run.

    ``per_line`` (when collected) maps cache-line index to its
    ``(fs_misses, ts_misses)`` counts — line-level attribution from the
    instrumentation-based tool, comparable against the sampling-based
    c2c report.
    """

    fs_misses: int
    ts_misses: int
    cold_misses: int
    instructions: int
    nthreads: int
    per_line: Dict[int, tuple] = None

    def hottest_fs_lines(self, n: int = 8):
        """Lines with the most false-sharing misses, hottest first."""
        if not self.per_line:
            return []
        items = [(line, fs, ts) for line, (fs, ts) in self.per_line.items()
                 if fs > 0]
        items.sort(key=lambda x: x[1], reverse=True)
        return items[:n]

    @property
    def fs_rate(self) -> float:
        """False-sharing misses per instruction (the paper's rate)."""
        if self.instructions <= 0:
            raise BaselineError("no instructions executed")
        return self.fs_misses / self.instructions

    @property
    def contention_rate(self) -> float:
        if self.instructions <= 0:
            raise BaselineError("no instructions executed")
        return (self.fs_misses + self.ts_misses) / self.instructions

    @property
    def has_false_sharing(self) -> bool:
        """[33]'s verdict: rate above 1e-3."""
        return self.fs_rate > FS_RATE_THRESHOLD


class ShadowMemoryDetector:
    """Word-granular (4-byte slot) sharing analysis over a program trace."""

    def __init__(self, max_threads: int = MAX_THREADS,
                 track_lines: bool = False) -> None:
        self.max_threads = max_threads
        self.track_lines = track_lines

    def run(
        self, program: ProgramTrace, chunk: int = DEFAULT_CHUNK
    ) -> ShadowReport:
        nt = program.nthreads
        if nt > self.max_threads:
            raise BaselineError(
                f"shadow tool handles at most {self.max_threads} threads; "
                f"program has {nt} (same limitation as [33])"
            )
        merged = interleave(program, chunk=chunk)
        cores = merged.core.tolist()
        addrs = merged.addr.tolist()
        writes = merged.is_write.tolist()

        holders: Dict[int, int] = {}       # line -> bitmask of holding threads
        tmasks: Dict[int, list] = {}       # line -> per-thread touched-slot mask
        invalmask: Dict[int, list] = {}    # line -> per-thread invalidator slots
        fs = ts = cold = 0
        all_zero = [0] * nt
        per_line: Dict[int, list] = {} if self.track_lines else None

        for t, addr, w in zip(cores, addrs, writes):
            line = addr >> 6
            slot = 1 << ((addr >> 2) & 15)
            bit = 1 << t
            held = holders.get(line, 0)
            masks = tmasks.get(line)
            if masks is None:
                masks = list(all_zero)
                tmasks[line] = masks
            if not held & bit:
                # This thread does not hold the line: a miss.
                inv = invalmask.get(line)
                if inv is not None and inv[t]:
                    # Invalidation-induced: false or true sharing?
                    if inv[t] & (masks[t] | slot):
                        ts += 1
                        if per_line is not None:
                            per_line.setdefault(line, [0, 0])[1] += 1
                    else:
                        fs += 1
                        if per_line is not None:
                            per_line.setdefault(line, [0, 0])[0] += 1
                    inv[t] = 0
                    masks[t] = 0  # new holding period
                else:
                    cold += 1
                held |= bit
            masks[t] |= slot
            if w:
                # Invalidate all other holders, recording what we wrote.
                others = held & ~bit
                if others:
                    inv = invalmask.get(line)
                    if inv is None:
                        inv = list(all_zero)
                        invalmask[line] = inv
                    for u in range(nt):
                        if others & (1 << u):
                            inv[u] |= slot
                    held = bit
            holders[line] = held
        return ShadowReport(
            fs_misses=fs,
            ts_misses=ts,
            cold_misses=cold,
            instructions=program.total_instructions,
            nthreads=nt,
            per_line=(None if per_line is None
                      else {k: tuple(v) for k, v in per_line.items()}),
        )


def false_sharing_rate(
    program: ProgramTrace, chunk: int = DEFAULT_CHUNK
) -> float:
    """One-shot convenience: the [33] false-sharing rate of a trace."""
    return ShadowMemoryDetector().run(program, chunk=chunk).fs_rate
