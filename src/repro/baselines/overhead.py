"""Monitoring-overhead comparison (paper Section 4, < 2 % claim).

The paper's practicality argument: counting PMU events costs almost nothing
(< 2 % even with counter rotation), SHERIFF's process-based detection costs
~20 %, and [33]'s dynamic instrumentation costs ~5x.  This module computes
all three overheads for a given run so the bench can print the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.baselines import sheriff, shadow
from repro.coherence.machine import SimulationResult
from repro.pmu.events import Event, TABLE2_EVENTS
from repro.pmu.sampler import PMUSampler


@dataclass
class OverheadReport:
    """Slowdown factors of each detection approach for one run."""

    base_seconds: float
    counting_overhead: float  # fractional, e.g. 0.006 = 0.6 %
    sheriff_slowdown: float   # multiplicative, e.g. 1.20
    shadow_slowdown: float    # multiplicative, e.g. 5.0

    @property
    def counting_seconds(self) -> float:
        return self.base_seconds * (1.0 + self.counting_overhead)

    @property
    def sheriff_seconds(self) -> float:
        return self.base_seconds * self.sheriff_slowdown

    @property
    def shadow_seconds(self) -> float:
        return self.base_seconds * self.shadow_slowdown

    def as_dict(self) -> Dict[str, float]:
        return {
            "base_seconds": self.base_seconds,
            "counting_pct": 100.0 * self.counting_overhead,
            "sheriff_pct": 100.0 * (self.sheriff_slowdown - 1.0),
            "shadow_factor": self.shadow_slowdown,
        }


def overhead_report(
    result: SimulationResult,
    events: Sequence[Event] = tuple(TABLE2_EVENTS),
    counters: int = 4,
) -> OverheadReport:
    """Overheads of monitoring ``result``'s run with each approach."""
    sampler = PMUSampler(counters=counters)
    return OverheadReport(
        base_seconds=result.seconds,
        counting_overhead=sampler.overhead_fraction(list(events)),
        sheriff_slowdown=sheriff.SLOWDOWN,
        shadow_slowdown=shadow.SLOWDOWN,
    )
