"""A SHERIFF-style detector (Liu & Berger, OOPSLA'11 [21]).

SHERIFF turns threads into processes and diffs per-page twins at
synchronization boundaries.  Working at epoch granularity on page twins, it
sees *interleavings it never observed directly*: any two threads that wrote
near each other within an epoch look like cache-line contention, whether or
not their writes actually alternated in time.  We model that coarseness:
writes by different threads within one epoch to the same **or adjacent**
cache line count toward its false-sharing score.  The coarse granularity is
what makes it flag reverse_index and word_count — programs whose padded
per-thread counters sit on neighbouring lines — which the paper (Section 5)
criticizes as over-reporting, since fixing them yields ~1-2 % speedups.

Reported overhead is ~20 % (the paper's comparison point for its own < 2 %).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.trace.access import ProgramTrace

#: Fraction of instructions that must be implicated before SHERIFF calls the
#: false sharing "significant".
SIGNIFICANCE_THRESHOLD = 2e-3

#: Reported average detection overhead of SHERIFF.
SLOWDOWN = 1.20

#: Writes per (epoch, line-neighbourhood) pair below which the interleaving
#: is ignored as noise.
_MIN_WRITES = 4


@dataclass
class SheriffReport:
    """Outcome of one SHERIFF-style run."""

    interleaved_writes: int
    total_writes: int
    instructions: int
    nthreads: int

    @property
    def fs_score(self) -> float:
        """Implicated writes per instruction."""
        if self.instructions <= 0:
            return 0.0
        return self.interleaved_writes / self.instructions

    @property
    def significant(self) -> bool:
        return self.fs_score > SIGNIFICANCE_THRESHOLD


class SheriffDetector:
    """Epoch + page-twin diffing model."""

    def __init__(self, epoch_accesses: int = 4096) -> None:
        self.epoch_accesses = epoch_accesses

    def run(self, program: ProgramTrace) -> SheriffReport:
        # Per (epoch, neighbourhood) -> {thread: writes}.  The neighbourhood
        # quantizes addresses to 128-byte regions: the twin-diff cannot tell
        # a line apart from its neighbour once both appear dirty in the diff.
        epoch_writes: Dict[Tuple[int, int], Dict[int, int]] = defaultdict(dict)
        total_writes = 0
        for tid, t in enumerate(program.threads):
            w_idx = t.is_write.nonzero()[0]
            total_writes += int(w_idx.size)
            regions = (t.addrs[w_idx] >> 7).tolist()
            epochs = (w_idx // self.epoch_accesses).tolist()
            for e, r in zip(epochs, regions):
                d = epoch_writes[(e, r)]
                d[tid] = d.get(tid, 0) + 1
        interleaved = 0
        for (_, _), per_thread in epoch_writes.items():
            if len(per_thread) < 2:
                continue
            counts = sorted(per_thread.values(), reverse=True)
            # All but the dominant writer's stores are implicated.
            implicated = sum(counts[1:])
            if implicated >= _MIN_WRITES:
                interleaved += implicated
        return SheriffReport(
            interleaved_writes=interleaved,
            total_writes=total_writes,
            instructions=program.total_instructions,
            nthreads=program.nthreads,
        )
