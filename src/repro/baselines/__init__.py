"""Prior-work detectors: the shadow-memory oracle [33] and SHERIFF [21]."""

from repro.baselines.overhead import OverheadReport, overhead_report
from repro.baselines.shadow import (
    FS_RATE_THRESHOLD,
    MAX_THREADS,
    ShadowMemoryDetector,
    ShadowReport,
    false_sharing_rate,
)
from repro.baselines.sheriff import (
    SIGNIFICANCE_THRESHOLD,
    SheriffDetector,
    SheriffReport,
)

__all__ = [
    "OverheadReport",
    "overhead_report",
    "FS_RATE_THRESHOLD",
    "MAX_THREADS",
    "ShadowMemoryDetector",
    "ShadowReport",
    "false_sharing_rate",
    "SIGNIFICANCE_THRESHOLD",
    "SheriffDetector",
    "SheriffReport",
]
