"""Simulation versioning.

``SIM_VERSION`` names the current semantics of the simulator + workload
generators.  It is part of every on-disk cache filename, so editing the
simulator or a trace generator (and bumping this) can never silently reuse
stale cached results.
"""

SIM_VERSION = "v9"
