"""Simulation versioning.

``SIM_VERSION`` names the current semantics of the simulator + workload
generators.  It is part of every on-disk cache filename, so editing the
simulator or a trace generator (and bumping this) can never silently reuse
stale cached results.

``SHADOW_VERSION`` names the semantics of the shadow-memory oracle
(:mod:`repro.baselines.shadow`).  The oracle's disk cache is keyed on both
versions — its inputs are the trace generators (``SIM_VERSION``) and its
own classification rules (``SHADOW_VERSION``) — and the cache payload is
stamped with the pair, so a stale pickle is discarded rather than silently
reused even when a file name survives a refactor.
"""

SIM_VERSION = "v9"

SHADOW_VERSION = "s1"
