"""A perf-c2c-style cache-to-cache contention report from HITM samples.

Modern perf ships ``perf c2c``: sample HITM events with their data
addresses (PEBS) and aggregate them into a "Shared Data Cache Line Table"
showing which lines bounce, which CPUs fight over them, and at which byte
offsets.  The same analysis runs here on the simulator's HITM samples
(``MulticoreMachine(hitm_sample_period=N)``), giving hardware-only
line-level attribution — no shadow memory, no source access, exactly the
sampling-based alternative the paper's related work discusses.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import PMUError
from repro.memory.layout import LINE_SIZE
from repro.utils.tables import render_table


@dataclass
class C2CLine:
    """Aggregated samples for one cache line."""

    line: int
    samples: int
    write_samples: int
    requesters: Dict[int, int]
    holders: Dict[int, int]
    offsets: Dict[int, int]  # byte offset in line -> samples

    @property
    def address(self) -> int:
        return self.line * LINE_SIZE

    @property
    def n_cpus(self) -> int:
        return len(set(self.requesters) | set(self.holders))

    @property
    def sharing_kind(self) -> str:
        """Heuristic perf-c2c style call: disjoint offsets across CPUs with
        2+ participants look like false sharing; a single hot offset looks
        like true sharing (a lock / shared counter)."""
        if self.n_cpus < 2:
            return "private"
        if len(self.offsets) >= 2:
            return "false-sharing-suspect"
        return "true-sharing-suspect"


@dataclass
class C2CReport:
    """The Shared Data Cache Line Table."""

    lines: List[C2CLine]
    total_samples: int
    sample_period: int

    def top(self, n: int = 10) -> List[C2CLine]:
        return self.lines[:n]

    def false_sharing_suspects(self) -> List[C2CLine]:
        return [ln for ln in self.lines
                if ln.sharing_kind == "false-sharing-suspect"]

    def render(self, n: int = 10) -> str:
        rows = []
        for cl in self.top(n):
            offs = ",".join(f"+{o}" for o in sorted(cl.offsets)[:6])
            cpus = ",".join(str(c) for c in sorted(cl.requesters)[:8])
            rows.append([
                f"0x{cl.address:x}", cl.samples,
                f"{100 * cl.write_samples / cl.samples:.0f}%",
                cl.n_cpus, cpus, offs, cl.sharing_kind,
            ])
        text = render_table(
            ["line", "HITM samples", "store%", "cpus", "requesters",
             "offsets", "kind"],
            rows,
            title="Shared Data Cache Line Table "
                  f"({self.total_samples} HITM samples, period "
                  f"{self.sample_period})",
        )
        return text


def c2c_report(
    samples: Sequence[Tuple[int, int, int, bool]],
    sample_period: int = 1,
) -> C2CReport:
    """Aggregate raw (requester, holder, addr, is_write) HITM samples."""
    if sample_period < 1:
        raise PMUError("sample_period must be >= 1")
    by_line: Dict[int, dict] = defaultdict(
        lambda: {"samples": 0, "writes": 0,
                 "req": defaultdict(int), "hold": defaultdict(int),
                 "off": defaultdict(int)}
    )
    for requester, holder, addr, is_write in samples:
        line = addr >> 6
        agg = by_line[line]
        agg["samples"] += 1
        agg["writes"] += int(is_write)
        agg["req"][requester] += 1
        agg["hold"][holder] += 1
        agg["off"][addr & (LINE_SIZE - 1)] += 1
    lines = [
        C2CLine(
            line=line,
            samples=agg["samples"],
            write_samples=agg["writes"],
            requesters=dict(agg["req"]),
            holders=dict(agg["hold"]),
            offsets=dict(agg["off"]),
        )
        for line, agg in by_line.items()
    ]
    lines.sort(key=lambda cl: cl.samples, reverse=True)
    return C2CReport(lines=lines, total_samples=len(samples),
                     sample_period=sample_period)
