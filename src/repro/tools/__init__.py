"""Analysis tools built on the substrate: the perf-c2c-style report."""

from repro.tools.c2c import C2CLine, C2CReport, c2c_report

__all__ = ["C2CLine", "C2CReport", "c2c_report"]
