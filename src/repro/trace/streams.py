"""Interleaving per-thread traces into one global access order.

Real cores run concurrently; a trace-driven simulator needs a total order.
We use chunked round-robin: each live thread issues ``chunk`` consecutive
accesses before the next thread runs.  ``chunk`` models the window of
accesses a core completes between coherence interactions — smaller chunks
mean finer interleaving and more cache-line ping-pong under false sharing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.trace.access import ProgramTrace

#: Default interleave granularity.  Chosen so that a tight false-sharing loop
#: (one store per ~10 instructions) yields a false-sharing miss rate in the
#: 1e-2 range, matching the rates Zhao et al.'s tool reports for
#: linear_regression (paper Table 7).
DEFAULT_CHUNK = 4


@dataclass(frozen=True)
class MergedTrace:
    """Column-oriented global access order: (core, addr, is_write) triples."""

    core: np.ndarray
    addr: np.ndarray
    is_write: np.ndarray

    def __len__(self) -> int:
        return int(self.core.size)


def interleave(program: ProgramTrace, chunk: int = DEFAULT_CHUNK) -> MergedTrace:
    """Merge a program's thread traces into chunked round-robin order.

    Threads of unequal length simply finish early: remaining threads keep
    rotating.  The merge is stable within each thread (program order is
    preserved per thread — the property coherence simulation depends on).
    """
    if chunk <= 0:
        raise TraceError("chunk must be positive")
    nt = program.nthreads
    sizes = [t.n_accesses for t in program.threads]
    total = sum(sizes)
    if total == 0:
        return MergedTrace(
            np.empty(0, np.int16), np.empty(0, np.int64), np.empty(0, bool)
        )
    if nt == 1:
        t = program.threads[0]
        return MergedTrace(
            np.zeros(t.n_accesses, np.int16), t.addrs.copy(), t.is_write.copy()
        )

    # Sort key: (round, thread, position) where round = position // chunk.
    # np.lexsort sorts by last key first.
    core_col = np.empty(total, np.int16)
    pos_col = np.empty(total, np.int64)
    addr_col = np.empty(total, np.int64)
    wr_col = np.empty(total, bool)
    off = 0
    for tid, t in enumerate(program.threads):
        n = t.n_accesses
        sl = slice(off, off + n)
        core_col[sl] = tid
        pos_col[sl] = np.arange(n, dtype=np.int64)
        addr_col[sl] = t.addrs
        wr_col[sl] = t.is_write
        off += n
    order = np.lexsort((pos_col, core_col, pos_col // chunk))
    return MergedTrace(core_col[order], addr_col[order], wr_col[order])
