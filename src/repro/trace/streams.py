"""Interleaving per-thread traces into one global access order.

Real cores run concurrently; a trace-driven simulator needs a total order.
We use chunked round-robin: each live thread issues ``chunk`` consecutive
accesses before the next thread runs.  ``chunk`` models the window of
accesses a core completes between coherence interactions — smaller chunks
mean finer interleaving and more cache-line ping-pong under false sharing.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Union

import numpy as np

from repro.errors import TraceError
from repro.trace.access import ProgramTrace

#: Default segment size (accesses) for :func:`interleave_stream`.  Large
#: enough that the per-segment numpy/lexsort overhead vanishes and the
#: drive strategies see the same routing signal as a monolithic merge,
#: small enough that a GB-scale trace streams in tens-of-MB working sets.
DEFAULT_SEGMENT = 4_194_304

#: Default interleave granularity.  Chosen so that a tight false-sharing loop
#: (one store per ~10 instructions) yields a false-sharing miss rate in the
#: 1e-2 range, matching the rates Zhao et al.'s tool reports for
#: linear_regression (paper Table 7).
DEFAULT_CHUNK = 4


@dataclass(frozen=True)
class MergedTrace:
    """Column-oriented global access order: (core, addr, is_write) triples."""

    core: np.ndarray
    addr: np.ndarray
    is_write: np.ndarray

    def __len__(self) -> int:
        return int(self.core.size)

    # ------------------------------------------------------------ store IO

    def to_file(self, path: Union[str, Path]) -> str:
        """Write the merged order as a binary trace store; returns digest."""
        from repro.trace.store import write_store

        return write_store(path, [
            ("core", np.asarray(self.core, dtype=np.int32)),
            ("addr", np.asarray(self.addr, dtype=np.int64)),
            ("is_write", np.asarray(self.is_write).view(np.uint8)
             if np.asarray(self.is_write).dtype == np.bool_
             else np.asarray(self.is_write, dtype=np.uint8)),
        ], meta={"kind": "merged"})

    @classmethod
    def open_mmap(cls, path: Union[str, Path]) -> "MergedTrace":
        """Open a merged store as read-only memmap views (zero-copy)."""
        from repro.trace.store import open_store

        return cls._from_store(open_store(path))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "MergedTrace":
        """Load a merged store into private writable arrays."""
        from repro.trace.store import read_store

        return cls._from_store(read_store(path))

    @classmethod
    def _from_store(cls, store) -> "MergedTrace":
        if store.meta.get("kind") != "merged":
            raise TraceError(
                f"store {store.path} is not a merged-trace store "
                f"(kind={store.meta.get('kind')!r})")
        return cls(store["core"], store["addr"],
                   store["is_write"].view(np.bool_))


def interleave(program: ProgramTrace, chunk: int = DEFAULT_CHUNK) -> MergedTrace:
    """Merge a program's thread traces into chunked round-robin order.

    Threads of unequal length simply finish early: remaining threads keep
    rotating.  The merge is stable within each thread (program order is
    preserved per thread — the property coherence simulation depends on).
    """
    if chunk <= 0:
        raise TraceError("chunk must be positive")
    nt = program.nthreads
    sizes = [t.n_accesses for t in program.threads]
    total = sum(sizes)
    if total == 0:
        return MergedTrace(
            np.empty(0, np.int16), np.empty(0, np.int64), np.empty(0, bool)
        )
    if nt == 1:
        t = program.threads[0]
        return MergedTrace(
            np.zeros(t.n_accesses, np.int16), t.addrs.copy(), t.is_write.copy()
        )

    # Sort key: (round, thread, position) where round = position // chunk.
    # np.lexsort sorts by last key first.
    core_col = np.empty(total, np.int16)
    pos_col = np.empty(total, np.int64)
    addr_col = np.empty(total, np.int64)
    wr_col = np.empty(total, bool)
    off = 0
    for tid, t in enumerate(program.threads):
        n = t.n_accesses
        sl = slice(off, off + n)
        core_col[sl] = tid
        pos_col[sl] = np.arange(n, dtype=np.int64)
        addr_col[sl] = t.addrs
        wr_col[sl] = t.is_write
        off += n
    order = np.lexsort((pos_col, core_col, pos_col // chunk))
    return MergedTrace(core_col[order], addr_col[order], wr_col[order])


def interleave_stream(
    program: ProgramTrace,
    chunk: int = DEFAULT_CHUNK,
    max_accesses: int = DEFAULT_SEGMENT,
) -> Iterator[MergedTrace]:
    """:func:`interleave`, streamed: bounded-memory segments, exact order.

    Yields consecutive :class:`MergedTrace` segments whose concatenation is
    bit-identical to ``interleave(program, chunk)`` — without ever
    materializing the full merged columns.  The merge key is
    ``(position // chunk, thread, position)``, so the global order is
    primarily by *round*: a window of whole rounds is self-contained, and
    each window only touches the ``len(threads) * chunk * rounds`` slice of
    every per-thread column (views when the columns are memmaps — the
    window working set is bounded regardless of trace size).

    ``max_accesses`` bounds the segment size; at least one round per
    segment is always emitted.
    """
    if chunk <= 0:
        raise TraceError("chunk must be positive")
    if max_accesses <= 0:
        raise TraceError("max_accesses must be positive")
    threads = program.threads
    nt = program.nthreads
    sizes = [t.n_accesses for t in threads]
    longest = max(sizes) if sizes else 0
    if longest == 0:
        return
    if nt == 1:
        t = threads[0]
        for lo in range(0, sizes[0], max_accesses):
            hi = min(lo + max_accesses, sizes[0])
            yield MergedTrace(
                np.zeros(hi - lo, np.int16),
                t.addrs[lo:hi], t.is_write[lo:hi],
            )
        return
    rounds = max(1, max_accesses // (nt * chunk))
    total_rounds = -(-longest // chunk)
    for r0 in range(0, total_rounds, rounds):
        lo = r0 * chunk
        hi = min((r0 + rounds) * chunk, longest)
        seg_n = sum(max(0, min(n, hi) - min(n, lo)) for n in sizes)
        if seg_n == 0:
            continue
        core_col = np.empty(seg_n, np.int16)
        pos_col = np.empty(seg_n, np.int64)
        addr_col = np.empty(seg_n, np.int64)
        wr_col = np.empty(seg_n, bool)
        off = 0
        for tid, t in enumerate(threads):
            a, b = min(sizes[tid], lo), min(sizes[tid], hi)
            if b <= a:
                continue
            sl = slice(off, off + (b - a))
            core_col[sl] = tid
            pos_col[sl] = np.arange(a, b, dtype=np.int64)
            addr_col[sl] = t.addrs[a:b]
            wr_col[sl] = t.is_write[a:b]
            off += b - a
        order = np.lexsort((pos_col, core_col, pos_col // chunk))
        yield MergedTrace(core_col[order], addr_col[order], wr_col[order])
