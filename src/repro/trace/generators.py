"""Index-pattern generators for building access traces.

The paper's sequential mini-programs (Section 2.2.2) access arrays in three
ways — linear, random, and strided — and its "bad-ma" modes of the vector
programs use the non-linear ones.  These helpers produce the index sequences;
workloads map them to byte addresses through an :class:`ArrayLayout`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError


def linear_indices(n: int, length: int) -> np.ndarray:
    """``n`` sequential indices cycling over ``[0, length)``."""
    _check(n, length)
    if n <= length:
        return np.arange(n, dtype=np.int64)
    return np.arange(n, dtype=np.int64) % length


def strided_indices(n: int, length: int, stride: int) -> np.ndarray:
    """``n`` indices stepping by ``stride`` modulo ``length``.

    A stride that is coprime with ``length`` eventually visits every element;
    that matches the mini-programs, which perform the same computation in all
    modes and differ only in visit order.
    """
    _check(n, length)
    if stride <= 0:
        raise TraceError("stride must be positive")
    return (np.arange(n, dtype=np.int64) * stride) % length


def random_indices(n: int, length: int, rng: np.random.Generator) -> np.ndarray:
    """``n`` uniformly random indices in ``[0, length)``."""
    _check(n, length)
    return rng.integers(0, length, size=n, dtype=np.int64)


def permuted_indices(n: int, length: int, rng: np.random.Generator) -> np.ndarray:
    """A random permutation pattern: every element visited once per sweep.

    Unlike :func:`random_indices` this preserves the "same computation"
    property exactly — each sweep touches each element exactly once, just in
    a cache-hostile order.
    """
    _check(n, length)
    sweeps = -(-n // length)  # ceil
    idx = np.concatenate([rng.permutation(length) for _ in range(sweeps)])
    return idx[:n].astype(np.int64)


def tiled_indices(n: int, length: int, tile: int) -> np.ndarray:
    """Blocked traversal: visit ``tile`` consecutive elements, then jump.

    Models loop-tiled matrix code (the "good" loop structure of the
    sequential matrix-multiply mini-program).
    """
    _check(n, length)
    if tile <= 0:
        raise TraceError("tile must be positive")
    i = np.arange(n, dtype=np.int64)
    block = (i // tile) % max(1, length // tile)
    return (block * tile + i % tile) % length


def interleave_streams(*streams: np.ndarray) -> np.ndarray:
    """Round-robin merge of equal-length index streams.

    Used to model loop bodies that touch several arrays per iteration
    (e.g. ``v1[i]``, ``v2[i]``, then ``psum[myid]`` in Figure 1).
    """
    if not streams:
        raise TraceError("need at least one stream")
    n = streams[0].size
    for s in streams:
        if s.size != n:
            raise TraceError("streams must be equal length")
    out = np.empty(n * len(streams), dtype=np.int64)
    for k, s in enumerate(streams):
        out[k :: len(streams)] = s
    return out


def _check(n: int, length: int) -> None:
    if n < 0:
        raise TraceError("n must be >= 0")
    if length <= 0:
        raise TraceError("length must be positive")
