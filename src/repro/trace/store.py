"""Zero-copy binary trace store: fixed-width columns behind a memmap.

Generator-materialized traces cap trace scale: every run re-synthesizes the
same numpy arrays, every worker process receives them pickled, and a
GB-scale trace costs GB of resident copies per process.  mtrace-style tools
operate on flat binary access logs for exactly this reason, so this module
gives traces the same shape:

* fixed-width little-endian columns (``addr: int64``, ``is_write: uint8``,
  ``core: int32``) laid out back to back, each 64-byte aligned;
* a versioned JSON header carrying the column directory, free-form ``meta``
  (thread spans, instruction weights...) and a blake2b **content digest**
  computed at write time, so consumers can key caches on the trace's bytes
  in O(1) without re-hashing gigabytes;
* :func:`open_store` maps the file as a read-only :class:`numpy.memmap`:
  opening is O(1) regardless of size, workers that open the same path share
  pages through the OS cache instead of holding private copies, and slicing
  a column is a view, never a copy.

Anything malformed — bad magic, truncated header or columns, an unknown
format version, a directory that does not parse — is a hard
:class:`~repro.errors.TraceError`: a trace store is an input, not an
accelerator, so silent degradation is never correct (contrast the shadow
cache in :mod:`repro.experiments.context`, which may legitimately drop
corrupt entries and recompute).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import TraceError

__all__ = [
    "STORE_MAGIC",
    "STORE_VERSION",
    "ColumnSpec",
    "TraceStore",
    "write_store",
    "open_store",
    "read_store",
    "save_program",
    "open_program",
]

#: File magic ("Repro TRaCe").
STORE_MAGIC = b"RTRC"

#: Current on-disk format version.  Readers demand an exact match: a store
#: written by a different format revision must be regenerated, not guessed
#: at.
STORE_VERSION = 1

#: Column blobs start on 64-byte boundaries (one cache line): memmap views
#: are aligned for every dtype the format carries.
_ALIGN = 64

#: dtypes the format admits, by canonical name.  Little-endian fixed width
#: only — the reader rejects anything else so a store is portable bytes,
#: not a pickle.
_DTYPES = {
    "int64": np.dtype("<i8"),
    "int32": np.dtype("<i4"),
    "int16": np.dtype("<i2"),
    "uint8": np.dtype("u1"),
}


def _dtype_name(dtype: np.dtype) -> str:
    for name, dt in _DTYPES.items():
        if dt == dtype.newbyteorder("<"):
            return name
    raise TraceError(f"unsupported column dtype {dtype!r}")


def _pad(offset: int) -> int:
    return (-offset) % _ALIGN


@dataclass(frozen=True)
class ColumnSpec:
    """Directory entry for one column: where its bytes live."""

    name: str
    dtype: str
    offset: int
    n: int

    @property
    def nbytes(self) -> int:
        return self.n * _DTYPES[self.dtype].itemsize


@dataclass
class TraceStore:
    """A trace store opened read-only; columns are zero-copy memmap views."""

    path: Path
    version: int
    n: int
    digest: str
    meta: Dict[str, object]
    columns: Dict[str, np.ndarray] = field(repr=False)

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise TraceError(
                f"store {self.path} has no column {name!r} "
                f"(has: {sorted(self.columns)})"
            ) from None


def _content_digest(arrays: Sequence[Tuple[str, np.ndarray]]) -> str:
    """blake2b over column names, dtypes and raw little-endian bytes."""
    h = hashlib.blake2b(digest_size=16)
    for name, arr in arrays:
        h.update(name.encode())
        h.update(_dtype_name(arr.dtype).encode())
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def write_store(
    path: Union[str, Path],
    columns: Sequence[Tuple[str, np.ndarray]],
    meta: Optional[Dict[str, object]] = None,
) -> str:
    """Write ``columns`` (name, 1-D array pairs) to ``path``; returns digest.

    All columns must share one length (rows of one logical table).  The
    digest lands in the header so readers get it in O(1).
    """
    if not columns:
        raise TraceError("a trace store needs at least one column")
    arrays: List[Tuple[str, np.ndarray]] = []
    n = -1
    for name, arr in columns:
        arr = np.asarray(arr)
        if arr.ndim != 1:
            raise TraceError(f"column {name!r} must be one-dimensional")
        if n < 0:
            n = int(arr.size)
        elif int(arr.size) != n:
            raise TraceError(
                f"column {name!r} has {arr.size} rows, expected {n}")
        arrays.append((name, np.ascontiguousarray(
            arr, dtype=_DTYPES[_dtype_name(arr.dtype)])))
    digest = _content_digest(arrays)

    # Header length depends on offsets, which depend on header length; the
    # padding after the header absorbs the fixpoint (two passes suffice:
    # the second header differs only in offset digits).
    def _directory(base: int) -> Tuple[List[Dict[str, object]], int]:
        entries = []
        off = base
        for name, arr in arrays:
            off += _pad(off)
            entries.append({"name": name, "dtype": _dtype_name(arr.dtype),
                            "offset": off, "n": int(arr.size)})
            off += arr.nbytes
        return entries, off

    meta = dict(meta or {})
    base = len(STORE_MAGIC) + 4
    for _ in range(2):
        entries, _ = _directory(base)
        header = json.dumps({
            "version": STORE_VERSION,
            "n": n,
            "digest": digest,
            "columns": entries,
            "meta": meta,
        }, sort_keys=True).encode()
        data_base = len(STORE_MAGIC) + 4 + len(header)
        data_base += _pad(data_base)
        if base == data_base:
            break
        base = data_base
    entries, _ = _directory(base)

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(STORE_MAGIC)
        fh.write(len(header).to_bytes(4, "little"))
        fh.write(header)
        pos = len(STORE_MAGIC) + 4 + len(header)
        for entry, (_, arr) in zip(entries, arrays):
            fh.write(b"\0" * (entry["offset"] - pos))
            fh.write(arr.tobytes())
            pos = entry["offset"] + arr.nbytes
    tmp.replace(path)
    return digest


def _parse_header(path: Path, raw: bytes) -> Dict[str, object]:
    if len(raw) < len(STORE_MAGIC) + 4:
        raise TraceError(f"trace store {path} is truncated (no header)")
    if raw[: len(STORE_MAGIC)] != STORE_MAGIC:
        raise TraceError(f"{path} is not a trace store (bad magic)")
    hlen = int.from_bytes(raw[len(STORE_MAGIC): len(STORE_MAGIC) + 4],
                          "little")
    body = raw[len(STORE_MAGIC) + 4: len(STORE_MAGIC) + 4 + hlen]
    if len(body) < hlen:
        raise TraceError(f"trace store {path} is truncated (header)")
    try:
        header = json.loads(body.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceError(f"trace store {path} has a corrupt header: {exc}")
    if not isinstance(header, dict):
        raise TraceError(f"trace store {path} has a corrupt header")
    version = header.get("version")
    if version != STORE_VERSION:
        raise TraceError(
            f"trace store {path} has format version {version!r}; "
            f"this reader supports version {STORE_VERSION} — regenerate it")
    return header


def open_store(path: Union[str, Path]) -> TraceStore:
    """Open a store as read-only memmap views (O(1), zero-copy)."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace store {path} does not exist")
    size = path.stat().st_size
    with open(path, "rb") as fh:
        raw = fh.read(min(size, len(STORE_MAGIC) + 4))
        if len(raw) >= len(STORE_MAGIC) + 4:
            hlen = int.from_bytes(
                raw[len(STORE_MAGIC):], "little")
            raw += fh.read(hlen)
    header = _parse_header(path, raw)
    try:
        n = int(header["n"])
        digest = str(header["digest"])
        meta = dict(header["meta"])
        entries = list(header["columns"])
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"trace store {path} has a corrupt header: {exc}")
    mm = np.memmap(path, dtype=np.uint8, mode="r")
    columns: Dict[str, np.ndarray] = {}
    for entry in entries:
        try:
            spec = ColumnSpec(str(entry["name"]), str(entry["dtype"]),
                              int(entry["offset"]), int(entry["n"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(
                f"trace store {path} has a corrupt column entry: {exc}")
        if spec.dtype not in _DTYPES:
            raise TraceError(
                f"trace store {path} column {spec.name!r} has unsupported "
                f"dtype {spec.dtype!r}")
        end = spec.offset + spec.nbytes
        if spec.offset < 0 or end > size:
            raise TraceError(
                f"trace store {path} is truncated: column {spec.name!r} "
                f"needs bytes [{spec.offset}, {end}) but the file has {size}")
        columns[spec.name] = mm[spec.offset:end].view(
            _DTYPES[spec.dtype])
    return TraceStore(path=path, version=STORE_VERSION, n=n,
                      digest=digest, meta=meta, columns=columns)


def read_store(path: Union[str, Path]) -> TraceStore:
    """Like :func:`open_store` but with private writable column copies."""
    store = open_store(path)
    store.columns = {k: np.array(v) for k, v in store.columns.items()}
    return store


# -------------------------------------------------------- program packing
#
# A whole ProgramTrace packs into one store: per-thread columns are
# concatenated and the header's meta records each thread's (offset, length)
# row span plus its instruction weights.  Workers therefore receive a
# (path, offset, length) handle per thread — the file — and reconstruct
# zero-copy ThreadTrace views locally instead of unpickling arrays.


def save_program(program, path: Union[str, Path]) -> str:
    """Persist a :class:`~repro.trace.access.ProgramTrace`; returns digest."""
    spans = []
    off = 0
    for t in program.threads:
        spans.append({
            "offset": off,
            "length": int(t.n_accesses),
            "instr_per_access": float(t.instr_per_access),
            "extra_instructions": int(t.extra_instructions),
        })
        off += int(t.n_accesses)
    addrs = (np.concatenate([t.addrs for t in program.threads])
             if off else np.empty(0, np.int64))
    is_write = (np.concatenate([t.is_write for t in program.threads])
                if off else np.empty(0, bool))
    meta = {
        "kind": "program",
        "name": program.name,
        "threads": spans,
        "meta": dict(program.meta),
    }
    return write_store(path, [
        ("addr", addrs.astype(np.int64, copy=False)),
        ("is_write", is_write.astype(np.uint8, copy=False)),
    ], meta=meta)


def open_program(path: Union[str, Path], mmap: bool = True):
    """Open a program store as a ProgramTrace of zero-copy thread views.

    ``mmap=False`` copies the columns into private writable arrays (for
    callers that want to mutate); the default keeps everything a read-only
    view of the file.
    """
    from repro.trace.access import ProgramTrace, ThreadTrace

    store = open_store(path) if mmap else read_store(path)
    meta = store.meta
    if meta.get("kind") != "program":
        raise TraceError(
            f"trace store {path} is not a program store "
            f"(kind={meta.get('kind')!r})")
    addrs = store["addr"]
    is_write = store["is_write"].view(np.bool_)
    try:
        spans = list(meta["threads"])
    except (KeyError, TypeError):
        raise TraceError(f"trace store {path} has no thread directory")
    threads = []
    for i, span in enumerate(spans):
        try:
            lo = int(span["offset"])
            ln = int(span["length"])
            ipa = float(span["instr_per_access"])
            extra = int(span["extra_instructions"])
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(
                f"trace store {path} thread {i} span is corrupt: {exc}")
        if lo < 0 or lo + ln > store.n:
            raise TraceError(
                f"trace store {path} thread {i} span [{lo}, {lo + ln}) "
                f"exceeds the store's {store.n} rows")
        threads.append(ThreadTrace(
            addrs[lo:lo + ln], is_write[lo:lo + ln],
            instr_per_access=ipa, extra_instructions=extra))
    prog = ProgramTrace(threads, name=str(meta.get("name", "anonymous")),
                        meta=dict(meta.get("meta") or {}))
    prog.meta.setdefault("store_digest", store.digest)
    return prog
