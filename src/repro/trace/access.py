"""Memory-access trace containers.

A :class:`ThreadTrace` is the unit produced by workload generators: the
ordered byte addresses one thread touches, which of them are writes, and how
many retired instructions the thread executes per access (loop overhead,
arithmetic).  A :class:`ProgramTrace` bundles one trace per thread plus
program-level metadata; it is what the multicore machine consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.errors import TraceError
from repro.memory.layout import line_of


def _as_addr_column(arr) -> np.ndarray:
    """``arr`` as contiguous int64, without duplicating an eligible array.

    A read-only memmap view from :mod:`repro.trace.store` (or any
    already-contiguous int64 array) passes through untouched — copying it
    would silently double the resident cost of a GB-scale trace per
    ThreadTrace construction.
    """
    if (isinstance(arr, np.ndarray) and arr.dtype == np.int64
            and arr.flags.c_contiguous):
        return arr
    return np.ascontiguousarray(arr, dtype=np.int64)


def _as_write_column(arr) -> np.ndarray:
    """``arr`` as contiguous bool, zero-copy for bool/uint8 views."""
    if isinstance(arr, np.ndarray) and arr.flags.c_contiguous:
        if arr.dtype == np.bool_:
            return arr
        if arr.dtype == np.uint8:
            # Same bytes, different label: a store's uint8 column is a
            # bool column (the writer only emits 0/1).
            return arr.view(np.bool_)
    return np.ascontiguousarray(arr, dtype=bool)


@dataclass
class ThreadTrace:
    """One thread's ordered memory accesses.

    Attributes
    ----------
    addrs:
        Byte addresses, int64, in program order.
    is_write:
        Boolean per access; True for stores.
    instr_per_access:
        Average retired instructions attributed to each access (>= 1.0; the
        access itself counts as one instruction).
    extra_instructions:
        Instructions retired outside the per-access accounting — e.g. cycles
        burnt spinning on a lock.  This is how streamcluster's
        instruction-count nondeterminism (Table 8 discussion) enters.
    """

    addrs: np.ndarray
    is_write: np.ndarray
    instr_per_access: float = 3.0
    extra_instructions: int = 0

    def __post_init__(self) -> None:
        self.addrs = _as_addr_column(self.addrs)
        self.is_write = _as_write_column(self.is_write)
        if self.addrs.ndim != 1 or self.is_write.ndim != 1:
            raise TraceError("trace arrays must be one-dimensional")
        if self.addrs.shape != self.is_write.shape:
            raise TraceError(
                f"addrs ({self.addrs.shape}) and is_write ({self.is_write.shape}) "
                "must have the same length"
            )
        if self.addrs.size and self.addrs.min() < 0:
            raise TraceError(
                f"addresses must be non-negative (got {int(self.addrs.min())})"
            )
        # NaN compares False against everything, so the >= 1 check alone
        # would silently admit it (and +inf); reject non-finite explicitly.
        if not np.isfinite(self.instr_per_access):
            raise TraceError(
                "instr_per_access must be finite "
                f"(got {self.instr_per_access!r})"
            )
        if self.instr_per_access < 1.0:
            raise TraceError("instr_per_access must be >= 1 (the access itself)")
        if self.extra_instructions < 0:
            raise TraceError("extra_instructions must be >= 0")

    def __len__(self) -> int:
        return int(self.addrs.size)

    @property
    def n_accesses(self) -> int:
        return int(self.addrs.size)

    @property
    def n_writes(self) -> int:
        return int(self.is_write.sum())

    @property
    def n_reads(self) -> int:
        return self.n_accesses - self.n_writes

    @property
    def instructions(self) -> int:
        """Total retired instructions this thread executes."""
        return int(round(self.n_accesses * self.instr_per_access)) + self.extra_instructions

    def lines(self) -> np.ndarray:
        """Cache-line index per access."""
        return line_of(self.addrs)

    def footprint_lines(self) -> int:
        """Number of distinct cache lines touched."""
        if not self.addrs.size:
            return 0
        return int(np.unique(line_of(self.addrs)).size)

    # ------------------------------------------------------------ store IO

    def to_file(self, path: Union[str, Path]) -> str:
        """Write this thread as a binary trace store; returns the digest."""
        from repro.trace.store import write_store

        return write_store(path, [
            ("addr", self.addrs),
            ("is_write", self.is_write.view(np.uint8)),
        ], meta={
            "kind": "thread",
            "instr_per_access": float(self.instr_per_access),
            "extra_instructions": int(self.extra_instructions),
        })

    @classmethod
    def open_mmap(cls, path: Union[str, Path]) -> "ThreadTrace":
        """Open a thread store as read-only memmap views (zero-copy)."""
        from repro.trace.store import open_store

        return cls._from_store(open_store(path))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ThreadTrace":
        """Load a thread store into private writable arrays."""
        from repro.trace.store import read_store

        return cls._from_store(read_store(path))

    @classmethod
    def _from_store(cls, store) -> "ThreadTrace":
        meta = store.meta
        if meta.get("kind") != "thread":
            raise TraceError(
                f"store {store.path} is not a thread store "
                f"(kind={meta.get('kind')!r})")
        return cls(
            store["addr"],
            store["is_write"],
            instr_per_access=float(meta.get("instr_per_access", 3.0)),
            extra_instructions=int(meta.get("extra_instructions", 0)),
        )

    def concat(self, other: "ThreadTrace") -> "ThreadTrace":
        """Append another phase executed by the same thread.

        Instruction weights are merged so total instructions are preserved.
        """
        total = self.n_accesses + other.n_accesses
        if total == 0:
            return ThreadTrace(np.empty(0, np.int64), np.empty(0, bool))
        per_access = (
            self.n_accesses * self.instr_per_access
            + other.n_accesses * other.instr_per_access
        ) / total
        return ThreadTrace(
            np.concatenate([self.addrs, other.addrs]),
            np.concatenate([self.is_write, other.is_write]),
            instr_per_access=max(1.0, per_access),
            extra_instructions=self.extra_instructions + other.extra_instructions,
        )


@dataclass
class ProgramTrace:
    """A whole program run: one :class:`ThreadTrace` per thread.

    Thread ``i`` is pinned to core ``i`` by the machine.  ``meta`` carries
    free-form provenance (workload name, mode, size...) used by experiments;
    the simulator itself never reads it, so labels cannot leak into counts.
    """

    threads: List[ThreadTrace]
    name: str = "anonymous"
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.threads:
            raise TraceError("a program needs at least one thread")
        for i, t in enumerate(self.threads):
            if not isinstance(t, ThreadTrace):
                raise TraceError(f"thread {i} is not a ThreadTrace")

    @property
    def nthreads(self) -> int:
        return len(self.threads)

    @property
    def total_accesses(self) -> int:
        return sum(t.n_accesses for t in self.threads)

    @property
    def total_instructions(self) -> int:
        return sum(t.instructions for t in self.threads)

    def footprint_lines(self) -> int:
        """Distinct cache lines touched by any thread."""
        arrays = [line_of(t.addrs) for t in self.threads if t.addrs.size]
        if not arrays:
            return 0
        return int(np.unique(np.concatenate(arrays)).size)

    # ------------------------------------------------------------ store IO

    def to_file(self, path: Union[str, Path]) -> str:
        """Write the whole program as one trace store; returns the digest."""
        from repro.trace.store import save_program

        return save_program(self, path)

    @classmethod
    def open_mmap(cls, path: Union[str, Path]) -> "ProgramTrace":
        """Open a program store as zero-copy memmap-backed thread views."""
        from repro.trace.store import open_program

        return open_program(path, mmap=True)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ProgramTrace":
        """Load a program store into private writable arrays."""
        from repro.trace.store import open_program

        return open_program(path, mmap=False)


def empty_thread(instr: int = 0) -> ThreadTrace:
    """A thread that executes instructions but touches no memory."""
    return ThreadTrace(
        np.empty(0, np.int64), np.empty(0, bool), extra_instructions=instr
    )


def make_thread(
    addrs: np.ndarray,
    writes: Optional[np.ndarray] = None,
    instr_per_access: float = 3.0,
    extra_instructions: int = 0,
) -> ThreadTrace:
    """Convenience constructor; ``writes=None`` means all loads."""
    addrs = np.asarray(addrs, dtype=np.int64)
    if writes is None:
        writes = np.zeros(addrs.shape, dtype=bool)
    return ThreadTrace(addrs, np.asarray(writes, dtype=bool),
                       instr_per_access, extra_instructions)
