"""Memory-access trace containers.

A :class:`ThreadTrace` is the unit produced by workload generators: the
ordered byte addresses one thread touches, which of them are writes, and how
many retired instructions the thread executes per access (loop overhead,
arithmetic).  A :class:`ProgramTrace` bundles one trace per thread plus
program-level metadata; it is what the multicore machine consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import TraceError
from repro.memory.layout import line_of


@dataclass
class ThreadTrace:
    """One thread's ordered memory accesses.

    Attributes
    ----------
    addrs:
        Byte addresses, int64, in program order.
    is_write:
        Boolean per access; True for stores.
    instr_per_access:
        Average retired instructions attributed to each access (>= 1.0; the
        access itself counts as one instruction).
    extra_instructions:
        Instructions retired outside the per-access accounting — e.g. cycles
        burnt spinning on a lock.  This is how streamcluster's
        instruction-count nondeterminism (Table 8 discussion) enters.
    """

    addrs: np.ndarray
    is_write: np.ndarray
    instr_per_access: float = 3.0
    extra_instructions: int = 0

    def __post_init__(self) -> None:
        self.addrs = np.ascontiguousarray(self.addrs, dtype=np.int64)
        self.is_write = np.ascontiguousarray(self.is_write, dtype=bool)
        if self.addrs.ndim != 1 or self.is_write.ndim != 1:
            raise TraceError("trace arrays must be one-dimensional")
        if self.addrs.shape != self.is_write.shape:
            raise TraceError(
                f"addrs ({self.addrs.shape}) and is_write ({self.is_write.shape}) "
                "must have the same length"
            )
        if self.addrs.size and self.addrs.min() < 0:
            raise TraceError(
                f"addresses must be non-negative (got {int(self.addrs.min())})"
            )
        # NaN compares False against everything, so the >= 1 check alone
        # would silently admit it (and +inf); reject non-finite explicitly.
        if not np.isfinite(self.instr_per_access):
            raise TraceError(
                "instr_per_access must be finite "
                f"(got {self.instr_per_access!r})"
            )
        if self.instr_per_access < 1.0:
            raise TraceError("instr_per_access must be >= 1 (the access itself)")
        if self.extra_instructions < 0:
            raise TraceError("extra_instructions must be >= 0")

    def __len__(self) -> int:
        return int(self.addrs.size)

    @property
    def n_accesses(self) -> int:
        return int(self.addrs.size)

    @property
    def n_writes(self) -> int:
        return int(self.is_write.sum())

    @property
    def n_reads(self) -> int:
        return self.n_accesses - self.n_writes

    @property
    def instructions(self) -> int:
        """Total retired instructions this thread executes."""
        return int(round(self.n_accesses * self.instr_per_access)) + self.extra_instructions

    def lines(self) -> np.ndarray:
        """Cache-line index per access."""
        return line_of(self.addrs)

    def footprint_lines(self) -> int:
        """Number of distinct cache lines touched."""
        if not self.addrs.size:
            return 0
        return int(np.unique(line_of(self.addrs)).size)

    def concat(self, other: "ThreadTrace") -> "ThreadTrace":
        """Append another phase executed by the same thread.

        Instruction weights are merged so total instructions are preserved.
        """
        total = self.n_accesses + other.n_accesses
        if total == 0:
            return ThreadTrace(np.empty(0, np.int64), np.empty(0, bool))
        per_access = (
            self.n_accesses * self.instr_per_access
            + other.n_accesses * other.instr_per_access
        ) / total
        return ThreadTrace(
            np.concatenate([self.addrs, other.addrs]),
            np.concatenate([self.is_write, other.is_write]),
            instr_per_access=max(1.0, per_access),
            extra_instructions=self.extra_instructions + other.extra_instructions,
        )


@dataclass
class ProgramTrace:
    """A whole program run: one :class:`ThreadTrace` per thread.

    Thread ``i`` is pinned to core ``i`` by the machine.  ``meta`` carries
    free-form provenance (workload name, mode, size...) used by experiments;
    the simulator itself never reads it, so labels cannot leak into counts.
    """

    threads: List[ThreadTrace]
    name: str = "anonymous"
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.threads:
            raise TraceError("a program needs at least one thread")
        for i, t in enumerate(self.threads):
            if not isinstance(t, ThreadTrace):
                raise TraceError(f"thread {i} is not a ThreadTrace")

    @property
    def nthreads(self) -> int:
        return len(self.threads)

    @property
    def total_accesses(self) -> int:
        return sum(t.n_accesses for t in self.threads)

    @property
    def total_instructions(self) -> int:
        return sum(t.instructions for t in self.threads)

    def footprint_lines(self) -> int:
        """Distinct cache lines touched by any thread."""
        arrays = [line_of(t.addrs) for t in self.threads if t.addrs.size]
        if not arrays:
            return 0
        return int(np.unique(np.concatenate(arrays)).size)


def empty_thread(instr: int = 0) -> ThreadTrace:
    """A thread that executes instructions but touches no memory."""
    return ThreadTrace(
        np.empty(0, np.int64), np.empty(0, bool), extra_instructions=instr
    )


def make_thread(
    addrs: np.ndarray,
    writes: Optional[np.ndarray] = None,
    instr_per_access: float = 3.0,
    extra_instructions: int = 0,
) -> ThreadTrace:
    """Convenience constructor; ``writes=None`` means all loads."""
    addrs = np.asarray(addrs, dtype=np.int64)
    if writes is None:
        writes = np.zeros(addrs.shape, dtype=bool)
    return ThreadTrace(addrs, np.asarray(writes, dtype=bool),
                       instr_per_access, extra_instructions)
