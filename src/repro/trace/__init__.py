"""Access-trace containers, pattern generators, and the interleaver."""

from repro.trace.access import ProgramTrace, ThreadTrace, empty_thread, make_thread
from repro.trace.generators import (
    interleave_streams,
    linear_indices,
    permuted_indices,
    random_indices,
    strided_indices,
    tiled_indices,
)
from repro.trace.store import (
    TraceStore,
    open_program,
    open_store,
    read_store,
    save_program,
    write_store,
)
from repro.trace.streams import (
    DEFAULT_CHUNK,
    DEFAULT_SEGMENT,
    MergedTrace,
    interleave,
    interleave_stream,
)

__all__ = [
    "ProgramTrace",
    "ThreadTrace",
    "empty_thread",
    "make_thread",
    "linear_indices",
    "strided_indices",
    "random_indices",
    "permuted_indices",
    "tiled_indices",
    "interleave_streams",
    "DEFAULT_CHUNK",
    "DEFAULT_SEGMENT",
    "MergedTrace",
    "interleave",
    "interleave_stream",
    "TraceStore",
    "open_program",
    "open_store",
    "read_store",
    "save_program",
    "write_store",
]
