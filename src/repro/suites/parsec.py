"""PARSEC benchmark models (paper Section 4.2, Tables 5, 8-10).

``streamcluster`` carries the suite's only significant false sharing: its
source pads per-thread work structs to ``CACHE_LINE = 32`` bytes, half a
real line, so pairs of threads ping-pong (and fixing the constant to 64
does not remove all of it — paper Section 4.3).  The model's false-sharing
pressure falls with input size (bigger inputs spend more time streaming
points per struct update), its per-thread working set exceeds L2 at the
native input (bad memory access), and its barrier spin-waiting makes
instruction counts — and therefore normalized event counts — nondeterministic
at the smallest input with the most threads.

The other ten programs are streaming/pipeline workloads with padded
per-thread state: good, with realistic levels of benign sharing (canneal
and fluidanimate get a trace of insignificant false sharing, which SHERIFF
reported and the paper's detector rightly ignores).
"""

from __future__ import annotations

from typing import Dict

from repro.suites.common import ParamModel, kb


class StreamCluster(ParamModel):
    name = "streamcluster"
    suite = "parsec"
    inputs = ("simsmall", "simmedium", "simlarge", "native")
    opts = ("-O1", "-O2", "-O3")
    threads = (4, 8, 12)
    verify_exclude_inputs = ("native",)  # the paper could not verify native
    nondeterministic = True
    description = "online clustering; CACHE_LINE=32 padding bug"

    _POINTS: Dict[str, int] = {
        "simsmall": 24_000,
        "simmedium": 48_000,
        "simlarge": 96_000,
        "native": 200_000,
    }
    #: Per-input point-set footprint (scaled machine: L2 = 64 KiB).
    _SET_BYTES: Dict[str, int] = {
        "simsmall": kb(64),
        "simmedium": kb(192),
        "simlarge": kb(512),
        "native": kb(4096),
    }
    #: Iterations between work-struct updates: larger inputs stream more
    #: points per open-center bookkeeping update.
    _ACC_PERIOD: Dict[str, int] = {
        "simsmall": 20,
        "simmedium": 80,
        "simlarge": 410,
        "native": 430,
    }

    def p_iters(self, case):
        return max(1, self._POINTS[case.input_set] // case.threads)

    def p_input_bytes(self, case):
        return self._SET_BYTES[case.input_set] // 2

    def p_acc_fields(self, case):
        return 3  # cost, weight, assignment counters

    def p_acc_stride(self, case):
        return 32  # the CACHE_LINE=32 padding bug: two threads per real line

    def p_acc_period(self, case):
        period = self._ACC_PERIOD[case.input_set]
        if case.opt == "-O1":
            # -O1 already keeps most of the steady-state bookkeeping in
            # registers, but unlike linear_regression the contended structs
            # never go away at any level (Section 4.3: the -O2/-O3 rows of
            # Table 8 are still bad-fs, and -O1's residual plus the merge
            # phase keeps its oracle rate hovering around 1e-3).
            period = int(period * 3.4)
        return period

    def p_merge_rmws(self, case):
        return 40  # per-thread fold into the packed center-result block

    def p_gather_period(self, case):
        # The number of open centers — and with it the share of scattered
        # distance computations per point — grows with the input scale.
        return 1 if case.input_set == "native" else 8

    def p_gather_bytes(self, case):
        # Each thread repeatedly walks its share of the point set.
        return max(kb(8), self._SET_BYTES[case.input_set] // case.threads)

    def p_ipa(self, case):
        return 2.6

    def p_sync_every(self, case):
        return 1024  # barrier-heavy program

    def p_spin_instr(self, case, tid):
        # Threads spin on barriers when work is scarce: worst at the smallest
        # input spread over the most threads.  The spin time is scheduling
        # luck — a large, run-to-run-variable instruction inflation that can
        # push every normalized count below the learned thresholds (the
        # unstable top-right cell of Table 8).
        if case.input_set != "simsmall" or case.threads < 12:
            return 0
        rng = self.rng(case, "spin", tid)
        iters = self.p_iters(case)
        base = iters * 4
        p_heavy = 0.5 if case.opt == "-O1" else 0.12
        if rng.random() < p_heavy:
            return int(base * rng.uniform(8.0, 14.0))
        return int(base * rng.uniform(0.1, 0.6))


class _GoodParsec(ParamModel):
    """Shared shape for the ten well-behaved PARSEC programs."""

    suite = "parsec"
    inputs = ("simsmall", "simmedium", "simlarge", "native")
    opts = ("-O1", "-O2", "-O3")
    threads = (4, 8, 12)
    # The shadow-memory verifier is ~5x slower than native execution; the
    # paper skipped the "native" inputs for it throughout.
    verify_exclude_inputs = ("native",)

    _ITERS: Dict[str, int] = {
        "simsmall": 24_000,
        "simmedium": 48_000,
        "simlarge": 96_000,
        "native": 160_000,
    }
    acc_fields = 2
    acc_period = 4
    gather_period = 0
    gather_kb = 16
    gather_shared = False
    ipa = 3.0
    sync_every = 2048
    #: None = padded (no false sharing); a byte value models packed state
    #: whose update period is `fs_period` (insignificant false sharing).
    fs_stride = None
    fs_period = 0

    def p_iters(self, case):
        return max(1, self._ITERS[case.input_set] // case.threads)

    def p_input_bytes(self, case):
        return self._ITERS[case.input_set] * 4

    def p_acc_fields(self, case):
        return self.acc_fields

    def p_acc_stride(self, case):
        return self.fs_stride

    def p_acc_period(self, case):
        if self.fs_stride is not None and self.fs_period:
            return self.fs_period
        return self.acc_period

    def p_gather_period(self, case):
        return self.gather_period

    def p_gather_bytes(self, case):
        return kb(self.gather_kb)

    def p_gather_shared(self, case):
        return self.gather_shared

    def p_ipa(self, case):
        return self.ipa

    def p_sync_every(self, case):
        return self.sync_every


class Ferret(_GoodParsec):
    name = "ferret"
    description = "similarity-search pipeline; queue hand-offs"
    gather_period = 5
    gather_kb = 16
    gather_shared = True
    sync_every = 640  # pipeline queues synchronize often
    ipa = 3.4


class Canneal(_GoodParsec):
    name = "canneal"
    description = "simulated annealing over a netlist; scattered reads"
    gather_period = 8
    gather_kb = 16
    gather_shared = True
    # SHERIFF reported insignificant false sharing here; model a rarely
    # updated packed scratch pair.
    fs_stride = 32
    fs_period = 1400
    ipa = 3.2


class Fluidanimate(_GoodParsec):
    name = "fluidanimate"
    description = "SPH fluid simulation; grid-neighbour exchanges"
    gather_period = 10
    gather_kb = 12
    fs_stride = 32
    fs_period = 1600
    ipa = 3.0


class Swaptions(_GoodParsec):
    name = "swaptions"
    description = "Monte-Carlo swaption pricing; fully thread-private"
    acc_period = 2
    gather_period = 8
    gather_kb = 8
    ipa = 3.6


class Vips(_GoodParsec):
    name = "vips"
    description = "image pipeline; tile streaming"
    acc_period = 5
    gather_period = 0
    ipa = 2.9


class Bodytrack(_GoodParsec):
    name = "bodytrack"
    description = "particle-filter body tracking; shared model reads"
    gather_period = 6
    gather_kb = 32
    gather_shared = True
    ipa = 3.3


class Freqmine(_GoodParsec):
    name = "freqmine"
    description = "FP-growth mining; tree walks within cache reach"
    # The paper could not run two of its verification cases (16 of 18).
    verify_exclude_cases = (
        ("simsmall", "-O1", 4),
        ("simsmall", "-O1", 8),
    )
    gather_period = 6
    gather_kb = 24
    ipa = 3.5


class Blackscholes(_GoodParsec):
    name = "blackscholes"
    description = "option pricing; embarrassingly parallel streaming"
    acc_period = 6
    sync_every = 8192
    ipa = 3.1


class Raytrace(_GoodParsec):
    name = "raytrace"
    description = "ray tracing; BVH reads shared read-only"
    gather_period = 5
    gather_kb = 24
    gather_shared = True
    ipa = 3.2


class X264(_GoodParsec):
    name = "x264"
    description = "H.264 encoding; sliding-window streaming"
    acc_period = 3
    gather_period = 9
    gather_kb = 24
    ipa = 2.7


PARSEC_PROGRAMS = (
    Ferret,
    Canneal,
    Fluidanimate,
    StreamCluster,
    Swaptions,
    Vips,
    Bodytrack,
    Freqmine,
    Blackscholes,
    Raytrace,
    X264,
)
