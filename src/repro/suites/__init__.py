"""Phoenix and PARSEC benchmark workload models."""

from typing import Dict, List

from repro.errors import WorkloadError
from repro.suites.base import OPT_LEVELS, SuiteCase, SuiteProgram, opt_effects
from repro.suites.common import ParamModel
from repro.suites.parsec import PARSEC_PROGRAMS, StreamCluster
from repro.suites.phoenix import PHOENIX_PROGRAMS, LinearRegression

_SUITES: Dict[str, SuiteProgram] = {}
for _cls in PHOENIX_PROGRAMS + PARSEC_PROGRAMS:
    _inst = _cls()
    _SUITES[_inst.name] = _inst


def get_program(name: str) -> SuiteProgram:
    """Look up a suite program by name."""
    try:
        return _SUITES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown suite program {name!r}; known: {sorted(_SUITES)}"
        ) from None


def phoenix_programs() -> List[SuiteProgram]:
    return [_SUITES[c.name] for c in PHOENIX_PROGRAMS]


def parsec_programs() -> List[SuiteProgram]:
    return [_SUITES[c.name] for c in PARSEC_PROGRAMS]


def all_programs() -> List[SuiteProgram]:
    return phoenix_programs() + parsec_programs()


__all__ = [
    "OPT_LEVELS",
    "SuiteCase",
    "SuiteProgram",
    "opt_effects",
    "ParamModel",
    "PARSEC_PROGRAMS",
    "PHOENIX_PROGRAMS",
    "StreamCluster",
    "LinearRegression",
    "get_program",
    "phoenix_programs",
    "parsec_programs",
    "all_programs",
]
