"""A parametric benchmark model shared by the Phoenix and PARSEC suites.

Each benchmark thread executes ``iters`` loop iterations.  Every iteration
loads one element of the thread's private slice of the input (streaming);
every ``gather_period``-th iteration additionally loads a random element of
a gather table (hash lookups, pointer chasing, distance computations —
the bad-memory-access mechanism when the table outgrows the caches); every
``acc_period``-th iteration read-modify-writes the thread's accumulator
fields (the false-sharing mechanism when the accumulator structs of
different threads share cache lines).  Threads also touch a truly-shared
synchronization word periodically, and may burn ``spin_instr`` extra
instructions waiting on locks.

Subclasses override the ``p_*`` parameter methods per (input, opt, threads)
case; the base class turns parameters into traces.  Parameters describe the
*program* (structs, footprints, loop shapes) — never the expected label.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.analysis.symbols import Symbol
from repro.memory.allocator import BumpAllocator
from repro.memory.layout import LINE_SIZE
from repro.suites.base import SuiteCase, SuiteProgram, opt_effects
from repro.trace.access import ThreadTrace
from repro.workloads.builders import with_sync
from repro.workloads.plan import PlanBuilder, gather_bursts, sweeps_of


class ParamModel(SuiteProgram):
    """Parameter-driven benchmark model."""

    # ---- parameters (override per benchmark) -----------------------------

    def p_iters(self, case: SuiteCase) -> int:
        """Loop iterations per thread."""
        return 20_000

    def p_input_bytes(self, case: SuiteCase) -> int:
        """Total streamed input size in bytes (split across threads)."""
        return 1 << 20

    def p_acc_fields(self, case: SuiteCase) -> int:
        """Fields in the per-thread accumulator struct."""
        return 1

    def p_acc_stride(self, case: SuiteCase) -> Optional[int]:
        """Byte stride between adjacent threads' accumulator structs.

        None means properly padded (one cache line per thread); a value
        smaller than LINE_SIZE packs several threads per line — false
        sharing.
        """
        return None

    def p_acc_period(self, case: SuiteCase) -> int:
        """Iterations between accumulator updates (0 disables them)."""
        return 1

    def p_gather_period(self, case: SuiteCase) -> int:
        """Iterations between gather-table loads (0 disables them)."""
        return 0

    def p_gather_bytes(self, case: SuiteCase) -> int:
        """Gather-table footprint **per thread**."""
        return 1 << 16

    def p_gather_shared(self, case: SuiteCase) -> bool:
        """Whether all threads gather from one shared table."""
        return False

    def p_ipa(self, case: SuiteCase) -> float:
        """Base instructions per access (before the opt-level scale)."""
        return 3.0

    def p_sync_every(self, case: SuiteCase) -> int:
        """Accesses between true-sharing sync-word touches."""
        return 2048

    def p_spin_instr(self, case: SuiteCase, tid: int) -> int:
        """Extra instructions burnt spinning (models lock waiting)."""
        return 0

    def p_stack_every(self, case: SuiteCase) -> int:
        """Iterations between hot stack-slot RMWs (0 disables).

        Compiled loop bodies constantly touch thread-private stack slots
        (spilled temporaries, frame accesses); those accesses are L1-resident
        and dilute the per-instruction miss rates exactly as the
        mini-programs' accumulator traffic does.  Leave at 1 unless the
        modeled inner loop is a tight register-only kernel.
        """
        return 1

    def p_merge_rmws(self, case: SuiteCase) -> int:
        """RMWs each thread performs on the packed result-merge line at the
        end of the run (0 disables).

        Reduction-style programs end with every thread folding its result
        into adjacent slots of one shared structure.  The merge is constant
        work per thread, so its *per-instruction* weight grows with the
        thread count — which is why contention rates creep up with T even
        when the steady-state loop is thread-count-independent.
        """
        return 0

    # ---- trace construction ----------------------------------------------

    def _generate(self, case: SuiteCase) -> Sequence[ThreadTrace]:
        eff = opt_effects(case.opt)
        nt = case.threads
        iters = max(1, self.p_iters(case))
        alloc = BumpAllocator()
        sync_word = alloc.alloc_line_aligned(64)

        fields = max(1, self.p_acc_fields(case))
        stride = self.p_acc_stride(case)
        struct_bytes = max(8 * fields, 8)
        if stride is None:
            stride = ((struct_bytes + LINE_SIZE - 1) // LINE_SIZE) * LINE_SIZE
        acc_base = alloc.alloc(max(stride * nt, struct_bytes * nt), align=64)
        merge_base = alloc.alloc(8 * nt, align=64)  # packed: 8 slots/line

        in_bytes = max(self.p_input_bytes(case), 4 * nt)
        input_arr = alloc.alloc_array(4, in_bytes // 4, align=64)

        gather_shared = self.p_gather_shared(case)
        g_bytes = max(self.p_gather_bytes(case), 64)
        if gather_shared:
            shared_table = alloc.alloc_array(8, g_bytes // 8, align=64)

        acc_period = self.p_acc_period(case)
        gather_period = self.p_gather_period(case)
        ipa = self.p_ipa(case) * float(eff["instr_scale"])
        if not eff["registerized"]:
            # Unoptimized code spills scalars: a touch more memory traffic is
            # already captured by instr_scale; nothing extra needed here.
            pass

        stack_every = self.p_stack_every(case)
        chunk_elems = max(1, (in_bytes // 4) // nt)
        threads = []
        for tid in range(nt):
            rng = self.rng(case, tid)
            if gather_shared:
                table = shared_table
            else:
                table = alloc.alloc_array(8, g_bytes // 8, align=64)
            stack_slot = alloc.alloc_line_aligned(64)

            base_elem = tid * chunk_elems
            stream_idx = base_elem + (np.arange(iters) % chunk_elems)
            stream = input_arr.addr(stream_idx % (in_bytes // 4))

            it = np.arange(iters, dtype=np.int64)
            do_gather = (
                (it % gather_period == gather_period - 1)
                if gather_period > 0 else np.zeros(iters, bool)
            )
            do_acc = (
                (it % acc_period == acc_period - 1)
                if acc_period > 0 else np.zeros(iters, bool)
            )
            do_stack = (
                (it % stack_every == 0)
                if stack_every > 0 else np.zeros(iters, bool)
            )
            counts = (
                1
                + do_gather.astype(np.int64)
                + 2 * fields * do_acc.astype(np.int64)
                + 2 * do_stack.astype(np.int64)
            )
            total = int(counts.sum())
            addrs = np.empty(total, dtype=np.int64)
            writes = np.zeros(total, dtype=bool)
            ends = np.cumsum(counts)
            starts = ends - counts
            addrs[starts] = stream
            pos = starts + 1
            gs = pos[do_gather]
            if gs.size:
                g_idx = rng.integers(0, table.length, size=gs.size)
                addrs[gs] = table.addr(g_idx)
            pos = pos + do_gather.astype(np.int64)
            ss = pos[do_stack]
            addrs[ss] = stack_slot
            addrs[ss + 1] = stack_slot
            writes[ss + 1] = True
            pos = pos + 2 * do_stack.astype(np.int64)
            accs = pos[do_acc]
            acc_addr = acc_base + tid * stride
            for f in range(fields):
                addrs[accs + 2 * f] = acc_addr + 8 * f
                addrs[accs + 2 * f + 1] = acc_addr + 8 * f
                writes[accs + 2 * f + 1] = True
            n_merge = self.p_merge_rmws(case)
            if n_merge > 0:
                maddr = merge_base + 8 * tid
                m_a = np.full(2 * n_merge, maddr, dtype=np.int64)
                m_w = np.zeros(2 * n_merge, dtype=bool)
                m_w[1::2] = True
                addrs = np.concatenate([addrs, m_a])
                writes = np.concatenate([writes, m_w])
            addrs, writes = with_sync(
                addrs, writes, sync_word, self.p_sync_every(case)
            )
            threads.append(
                ThreadTrace(
                    addrs,
                    writes,
                    instr_per_access=max(1.0, ipa),
                    extra_instructions=max(0, self.p_spin_instr(case, tid)),
                )
            )
        return threads

    def _plan(self, case: SuiteCase):
        eff = opt_effects(case.opt)
        nt = case.threads
        iters = max(1, self.p_iters(case))
        pb = PlanBuilder(self.name, nt)
        sync = pb.line_region("sync", 64, size=8, kind="sync")

        fields = max(1, self.p_acc_fields(case))
        stride = self.p_acc_stride(case)
        struct_bytes = max(8 * fields, 8)
        if stride is None:
            stride = ((struct_bytes + LINE_SIZE - 1) // LINE_SIZE) * LINE_SIZE
        acc_base = pb.alloc.alloc(max(stride * nt, struct_bytes * nt),
                                  align=64)
        acc_syms = [
            pb.symbols.add(Symbol(
                f"acc[t{t}]", acc_base + t * stride, struct_bytes,
                kind="struct", tid=t, elem_size=8, group="acc",
            ))
            for t in range(nt)
        ]
        merge_base = pb.alloc.alloc(8 * nt, align=64)
        merge_syms = [
            pb.symbols.add(Symbol(
                f"merge[t{t}]", merge_base + 8 * t, 8,
                kind="merge", tid=t, elem_size=8, group="merge",
            ))
            for t in range(nt)
        ]

        in_bytes = max(self.p_input_bytes(case), 4 * nt)
        n_total = in_bytes // 4
        input_sym = pb.array("input", 4, n_total)

        gather_shared = self.p_gather_shared(case)
        g_bytes = max(self.p_gather_bytes(case), 64)
        shared_sym = None
        if gather_shared:
            shared_sym = pb.array("gather", 8, g_bytes // 8, kind="table",
                                  group="gather")

        acc_period = self.p_acc_period(case)
        gather_period = self.p_gather_period(case)
        ipa = max(1.0, self.p_ipa(case) * float(eff["instr_scale"]))
        stack_every = self.p_stack_every(case)
        sync_every = self.p_sync_every(case)
        n_merge = max(0, self.p_merge_rmws(case))
        chunk = max(1, n_total // nt)
        extra = []
        for tid in range(nt):
            if gather_shared:
                tsym = shared_sym
            else:
                tsym = pb.array(f"gather[t{tid}]", 8, g_bytes // 8,
                                kind="table", tid=tid, group="gather")
            ssym = pb.line_region(f"stack[t{tid}]", 64, size=8,
                                  kind="stack", tid=tid, group="stack")

            span = min(iters, chunk)
            sweeps = sweeps_of(iters, chunk)
            pb.use(input_sym, tid, reads=iters, start=tid * chunk,
                   stop=tid * chunk + span,
                   order="linear" if sweeps <= 1 else "scattered",
                   bursts=1.0 if span * 4 <= LINE_SIZE else sweeps)
            n_body = iters

            g_hits = iters // gather_period if gather_period > 0 else 0
            if g_hits:
                lines = max(1, g_bytes // LINE_SIZE)
                pb.use(tsym, tid, reads=g_hits, order="scattered",
                       bursts=gather_bursts(g_hits, lines,
                                            gather_period * float(lines)))
                n_body += g_hits

            a_hits = iters // acc_period if acc_period > 0 else 0
            if a_hits:
                pb.use(acc_syms[tid], tid, reads=a_hits * fields,
                       writes=a_hits * fields, stop=fields,
                       order="scattered")
                n_body += 2 * fields * a_hits

            s_hits = ((iters + stack_every - 1) // stack_every
                      if stack_every > 0 else 0)
            if s_hits:
                pb.use(ssym, tid, reads=s_hits, writes=s_hits,
                       order="scattered")
                n_body += 2 * s_hits

            if n_merge:
                pb.use(merge_syms[tid], tid, reads=n_merge, writes=n_merge,
                       order="scattered", phase=1)
                n_body += 2 * n_merge

            pb.sync_use(sync, tid, n_body, sync_every)
            extra.append(max(0, self.p_spin_instr(case, tid)))
        return pb.finish(ipa, extra=extra)


def mb(n: float) -> int:
    """Megabytes to bytes (scaled-machine convention: divide real inputs
    by 4 before calling, as problem sizes follow the 1:4 scaled caches)."""
    return int(n * (1 << 20))


def kb(n: float) -> int:
    return int(n * 1024)
