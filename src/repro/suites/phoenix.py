"""Phoenix benchmark models (paper Section 4.1, Tables 5-7, 10).

Published ground truth the models encode mechanistically:

* ``linear_regression`` — each thread accumulates SX/SY/SXX/SYY/SXY into a
  packed 40-byte args struct; adjacent threads' structs share cache lines.
  At -O0/-O1 every point updates the struct in memory (heavy false sharing);
  at -O2/-O3 the accumulators live in registers and only periodic spills
  remain — enough residual contention that the shadow-memory tool still
  reports a rate just above 1e-3 (paper Table 7), while the event signature
  drops to "good".
* ``matrix_multiply`` — column-major walks of a matrix far larger than L2:
  bad memory access, no sharing.
* ``histogram`` — private histograms (good), with a small cross-thread merge
  phase whose relative weight at the smallest input / most threads makes one
  grid cell flicker between good and bad-fs across runs (paper Section 4.3).
* everything else — streaming with padded per-thread state: good.
"""

from __future__ import annotations

from typing import Dict

from repro.suites.common import ParamModel, kb


class LinearRegression(ParamModel):
    name = "linear_regression"
    suite = "phoenix"
    inputs = ("50MB", "100MB", "500MB")
    description = "map-reduce linear regression; packed per-thread args structs"

    _POINTS: Dict[str, int] = {"50MB": 16_000, "100MB": 32_000, "500MB": 160_000}

    def p_iters(self, case):
        return max(1, self._POINTS[case.input_set] // case.threads)

    def p_input_bytes(self, case):
        return self._POINTS[case.input_set] * 8

    def p_acc_fields(self, case):
        return 5  # SX, SY, SXX, SYY, SXY

    def p_acc_stride(self, case):
        return 40  # sizeof(lreg_args): packed, no padding

    def p_acc_period(self, case):
        # -O0 updates the struct every point; -O1's common-subexpression
        # reuse halves the memory updates; at -O2/-O3 registers hold the
        # sums and only periodic spills and the final merge touch memory —
        # the residual contention the shadow tool still sees (rate ~1.4e-3,
        # just above its 1e-3 threshold, paper Table 7).
        if case.opt == "-O0":
            return 1
        if case.opt == "-O1":
            return 2
        return 200

    def p_ipa(self, case):
        return 3.4

    def p_sync_every(self, case):
        return 4096


class Histogram(ParamModel):
    name = "histogram"
    suite = "phoenix"
    inputs = ("10MB", "100MB", "400MB")
    nondeterministic = True
    description = "pixel histogram; private bins plus a small merge phase"

    _PIXELS: Dict[str, int] = {"10MB": 48_000, "100MB": 120_000, "400MB": 240_000}

    def p_iters(self, case):
        return max(1, self._PIXELS[case.input_set] // case.threads)

    def p_input_bytes(self, case):
        return self._PIXELS[case.input_set] * 4

    def p_acc_fields(self, case):
        return 3  # R, G, B bins touched per pixel batch

    def p_acc_stride(self, case):
        # The merge-phase scratch slots are packed; whether that matters
        # depends on how often they are touched (p_acc_period).
        return 24

    def p_acc_period(self, case):
        # Merge traffic is amortized over the scan; its relative weight grows
        # as the per-thread chunk shrinks.  At the smallest input with all 12
        # threads and -O2's lower instruction count, scheduling luck decides
        # whether the merge bursts overlap — a coin flip between a "good" and
        # a "bad-fs" signature, exactly the unstable cell of Section 4.3.
        if (case.input_set == "10MB" and case.opt == "-O2"
                and case.threads == 12):
            flaky = self.rng(case, "merge-overlap").random() < 0.5
            return 24 if flaky else 1100
        return 1100

    def p_ipa(self, case):
        return 3.0

    def p_sync_every(self, case):
        return 3072


class WordCount(ParamModel):
    name = "word_count"
    suite = "phoenix"
    inputs = ("small", "medium", "large")
    description = "word counting; hash-table lookups, padded counters"

    _WORDS = {"small": 32_000, "medium": 64_000, "large": 160_000}

    def p_iters(self, case):
        return max(1, self._WORDS[case.input_set] // case.threads)

    def p_input_bytes(self, case):
        return self._WORDS[case.input_set] * 4

    def p_acc_fields(self, case):
        return 2

    def p_acc_period(self, case):
        return 4

    def p_gather_period(self, case):
        return 6

    def p_gather_bytes(self, case):
        return kb(16)  # hash table: comfortably cache-resident

    def p_ipa(self, case):
        return 3.2


class ReverseIndex(ParamModel):
    name = "reverse_index"
    suite = "phoenix"
    inputs = ("datafiles",)
    description = "HTML link extraction; pointer-heavy but cache-resident"

    def p_iters(self, case):
        return max(1, 64_000 // case.threads)

    def p_input_bytes(self, case):
        return kb(256)

    def p_acc_fields(self, case):
        return 2

    def p_acc_period(self, case):
        return 8

    def p_gather_period(self, case):
        return 6

    def p_gather_bytes(self, case):
        return kb(16)

    def p_ipa(self, case):
        return 3.5


class KMeans(ParamModel):
    name = "kmeans"
    suite = "phoenix"
    inputs = ("small", "large")
    description = "k-means clustering; shared read-only centroids"

    _POINTS = {"small": 48_000, "large": 120_000}

    def p_iters(self, case):
        return max(1, self._POINTS[case.input_set] // case.threads)

    def p_input_bytes(self, case):
        return self._POINTS[case.input_set] * 4

    def p_acc_fields(self, case):
        return 4

    def p_acc_period(self, case):
        return 2

    def p_gather_period(self, case):
        return 4

    def p_gather_bytes(self, case):
        return kb(24)  # centroid table

    def p_gather_shared(self, case):
        return True  # read-shared centroids: benign HIT/HITE snoop traffic

    def p_ipa(self, case):
        return 3.4


class MatrixMultiply(ParamModel):
    name = "matrix_multiply"
    suite = "phoenix"
    inputs = ("256", "512", "1024")
    description = "naive matmul; column walks of a matrix far beyond L2"

    _ITERS = {"256": 48_000, "512": 96_000, "1024": 192_000}
    _BBYTES = {"256": kb(160), "512": kb(256), "1024": kb(512)}

    def p_iters(self, case):
        return max(1, self._ITERS[case.input_set] // case.threads)

    def p_input_bytes(self, case):
        return self._ITERS[case.input_set] * 4

    def p_acc_fields(self, case):
        return 1

    def p_acc_period(self, case):
        return 16  # C[i,j] writes are rare relative to the B walk

    def p_gather_period(self, case):
        return 1  # every iteration strides through B

    def p_gather_bytes(self, case):
        return self._BBYTES[case.input_set]

    def p_stack_every(self, case):
        return 0  # three-line inner loop: no spilled temporaries

    def p_ipa(self, case):
        return 2.8


class StringMatch(ParamModel):
    name = "string_match"
    suite = "phoenix"
    inputs = ("small", "medium", "large")
    description = "streaming key search; almost pure linear scans"

    _BYTES = {"small": 32_000, "medium": 80_000, "large": 200_000}

    def p_iters(self, case):
        return max(1, self._BYTES[case.input_set] // case.threads)

    def p_input_bytes(self, case):
        return self._BYTES[case.input_set] * 4

    def p_acc_fields(self, case):
        return 1

    def p_acc_period(self, case):
        return 8

    def p_ipa(self, case):
        return 2.8


class PCA(ParamModel):
    name = "pca"
    suite = "phoenix"
    inputs = ("small", "medium", "large")
    description = "covariance computation; row-wise streaming"

    _ROWS = {"small": 40_000, "medium": 100_000, "large": 200_000}

    def p_iters(self, case):
        return max(1, self._ROWS[case.input_set] // case.threads)

    def p_input_bytes(self, case):
        return self._ROWS[case.input_set] * 4

    def p_acc_fields(self, case):
        return 3

    def p_acc_period(self, case):
        return 3

    def p_gather_period(self, case):
        return 8

    def p_gather_bytes(self, case):
        return kb(8)

    def p_ipa(self, case):
        return 3.6


PHOENIX_PROGRAMS = (
    Histogram,
    LinearRegression,
    WordCount,
    ReverseIndex,
    KMeans,
    MatrixMultiply,
    StringMatch,
    PCA,
)
