"""Suite-program abstractions: cases, optimization levels, the model base.

A suite program models one Phoenix/PARSEC benchmark as a trace generator
whose sharing behaviour depends on (input set, compiler optimization level,
thread count) — the three axes of the paper's Tables 5-10.  Models encode
*mechanisms* (a packed struct, a registerized accumulator, a hostile matrix
walk, spin-lock waiting), never labels: the classification is produced by
running the trace through the same simulator and classifier as everything
else.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError, WorkloadError
from repro.telemetry.core import TELEMETRY
from repro.trace.access import ProgramTrace, ThreadTrace
from repro.utils.rng import rng_for

#: Optimization levels and their modeled effects.  ``instr_scale``
#: multiplies instruction counts (unoptimized code executes more of them);
#: ``registerized`` says whether the compiler keeps loop accumulators in
#: registers — the effect that fixed linear_regression's false sharing at
#: -O2 but could not fix streamcluster's (paper Section 4.3).
OPT_LEVELS: Dict[str, Dict[str, object]] = {
    "-O0": {"instr_scale": 1.9, "registerized": False},
    "-O1": {"instr_scale": 1.25, "registerized": False},
    "-O2": {"instr_scale": 1.0, "registerized": True},
    "-O3": {"instr_scale": 0.96, "registerized": True},
}


def opt_effects(opt: str) -> Dict[str, object]:
    try:
        return OPT_LEVELS[opt]
    except KeyError:
        raise ConfigError(f"unknown optimization level {opt!r}") from None


@dataclass(frozen=True)
class SuiteCase:
    """One cell of a benchmark's case grid."""

    input_set: str
    opt: str
    threads: int
    rep: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        opt_effects(self.opt)
        if self.threads < 1:
            raise ConfigError("threads must be >= 1")
        if self.rep < 0:
            raise ConfigError("rep must be >= 0")

    def with_(self, **kw) -> "SuiteCase":
        return replace(self, **kw)

    def run_id(self) -> str:
        return (f"{self.input_set}-{self.opt}-t{self.threads}"
                f"-s{self.seed}-r{self.rep}")


class SuiteProgram(ABC):
    """Base class for Phoenix / PARSEC benchmark models."""

    name: str = "abstract"
    suite: str = "phoenix"
    inputs: Tuple[str, ...] = ()
    opts: Tuple[str, ...] = ("-O0", "-O1", "-O2")
    threads: Tuple[int, ...] = (3, 6, 9, 12)
    #: Thread counts usable by the 8-thread-limited verification tool.
    verify_threads: Tuple[int, ...] = ()
    #: Inputs excluded from verification (e.g. PARSEC "native": too slow).
    verify_exclude_inputs: Tuple[str, ...] = ()
    #: Individual cases excluded from verification (build/run quirks).
    verify_exclude_cases: Tuple[Tuple[str, str, int], ...] = ()
    #: True when repeated runs re-execute different computations
    #: (spin-lock nondeterminism).
    nondeterministic: bool = False
    description: str = ""

    # ----------------------------------------------------------------- grid

    def cases(self, rep: int = 0, seed: int = 0) -> List[SuiteCase]:
        """The full classification grid (the paper's "all cases")."""
        return [
            SuiteCase(i, o, t, rep=rep, seed=seed)
            for i in self.inputs
            for o in self.opts
            for t in self.threads
        ]

    def verification_cases(self, rep: int = 0, seed: int = 0) -> List[SuiteCase]:
        """The subset the Zhao-style tool can verify (<= 8 threads, etc.)."""
        vt = self.verify_threads or tuple(t for t in self.threads if t <= 8)
        out = []
        for i in self.inputs:
            if i in self.verify_exclude_inputs:
                continue
            for o in self.opts:
                for t in vt:
                    if (i, o, t) in self.verify_exclude_cases:
                        continue
                    out.append(SuiteCase(i, o, t, rep=rep, seed=seed))
        return out

    # ---------------------------------------------------------------- trace

    def trace(self, case: SuiteCase) -> ProgramTrace:
        self.validate(case)
        tel = TELEMETRY
        if tel.enabled:
            with tel.span("suites.trace", program=self.name,
                          case=case.run_id()) as sp:
                threads = self._generate(case)
                sp.set(accesses=int(sum(t.n_accesses for t in threads)))
            tel.count("suites.traces")
        else:
            threads = self._generate(case)
        return ProgramTrace(
            list(threads),
            name=f"{self.name}[{case.run_id()}]",
            meta={
                "workload": self.name,
                "suite": self.suite,
                "input": case.input_set,
                "opt": case.opt,
                "threads": case.threads,
                "rep": case.rep,
            },
        )

    def validate(self, case: SuiteCase) -> None:
        if case.input_set not in self.inputs:
            raise WorkloadError(
                f"{self.name}: unknown input {case.input_set!r}"
                f" (have {self.inputs})"
            )
        if case.opt not in self.opts:
            raise WorkloadError(f"{self.name}: unsupported opt {case.opt!r}")

    @abstractmethod
    def _generate(self, case: SuiteCase) -> Sequence[ThreadTrace]:
        """Produce one ThreadTrace per thread."""

    def plan(self, case: SuiteCase):
        """Symbolic access plan for one case (no trace generated).

        Returns an :class:`repro.workloads.plan.AccessPlan`; raises
        :class:`WorkloadError` for models that do not expose one.
        """
        self.validate(case)
        plan = self._plan(case)
        plan.meta.setdefault("workload", self.name)
        plan.meta.setdefault("suite", self.suite)
        plan.meta.setdefault("input", case.input_set)
        plan.meta.setdefault("opt", case.opt)
        plan.meta.setdefault("threads", case.threads)
        return plan.validate()

    def _plan(self, case: SuiteCase):
        raise WorkloadError(
            f"{self.name} does not expose a symbolic access plan"
        )

    def cache_key(self, case: SuiteCase) -> tuple:
        key = (case.input_set, case.opt, case.threads, case.seed)
        if self.nondeterministic:
            key = key + (case.rep,)
        return key

    def rng(self, case: SuiteCase, *extra) -> np.random.Generator:
        parts = [self.name, case.input_set, case.opt, case.threads, case.seed]
        if self.nondeterministic:
            parts.append(case.rep)
        return rng_for(*parts, *extra)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
