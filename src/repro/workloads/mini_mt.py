"""The eight multi-threaded mini-programs of Section 2.2.1.

Three scalar programs (psums, padding, false1), three vector programs
(psumv, pdot, count), and two matrix programs (pmatmult, pmatcompare).
Every thread repeatedly writes its own variable; in bad-fs mode those
variables are packed into shared cache lines.  The vector and matrix
programs additionally support bad-ma (hostile visit order).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.memory.allocator import BumpAllocator
from repro.trace.access import ThreadTrace
from repro.workloads.base import (
    LOOP_IPA,
    Mode,
    RunConfig,
    Workload,
    ordered_visit,
    partition,
)
from repro.workloads.builders import (
    loop_body,
    rmw,
    stores,
    thread_slots,
    with_sync,
)
from repro.workloads.plan import (
    PlanBuilder,
    clamp_range,
    elems_per_line,
    hostile_bursts,
    visit_kind,
)

_ALL3 = frozenset({Mode.GOOD, Mode.BAD_FS, Mode.BAD_MA})
_FS2 = frozenset({Mode.GOOD, Mode.BAD_FS})


def _residues_in(lo: int, hi: int, mod: int, residue: int) -> int:
    """How many integers in [lo, hi) are ``residue`` modulo ``mod``."""

    def upto(x: int) -> int:
        return max(0, (x - residue + mod - 1) // mod)

    return upto(hi) - upto(lo)


class _ScalarBase(Workload):
    """Common machinery for the scalar programs: no vector data at all."""

    kind = "mt"
    modes = _FS2
    train_sizes = (2_000, 6_000, 12_000)

    #: Iterations between true-sharing sync touches; varied per program so
    #: the training set sees a range of benign-sharing floors.
    sync_every = 1024

    def _generate(self, cfg: RunConfig) -> Sequence[ThreadTrace]:
        alloc = BumpAllocator()
        sync_word = alloc.alloc_line_aligned(64)
        slots = thread_slots(alloc, cfg.threads, cfg.mode, self.slot_size)
        threads = []
        for tid in range(cfg.threads):
            addrs, writes = self._body(slots[tid], cfg.size)
            addrs, writes = with_sync(addrs, writes, sync_word, self.sync_every)
            threads.append(ThreadTrace(addrs, writes, instr_per_access=self.ipa))
        return threads

    slot_size = 8
    slot_group = "psum"
    ipa = LOOP_IPA

    def _body(self, slot: int, iters: int):
        raise NotImplementedError

    def _slot_plan(self, iters: int):
        """(reads, writes, fields) the per-thread body performs on its slot."""
        raise NotImplementedError

    def _plan(self, cfg: RunConfig):
        pb = PlanBuilder(self.name, cfg.threads)
        sync = pb.line_region("sync", 64, size=8, kind="sync")
        slots = pb.thread_slots(self.slot_group, cfg.mode,
                                elem_size=self.slot_size)
        reads, writes, fields = self._slot_plan(cfg.size)
        for tid in range(cfg.threads):
            pb.use(slots[tid], tid, reads=reads, writes=writes,
                   stop=fields, order="scattered")
            pb.sync_use(sync, tid, reads + writes, self.sync_every)
        return pb.finish(self.ipa)


class PSums(_ScalarBase):
    """Each thread accumulates into its own scalar: ``psum[myid] += f(i)``."""

    name = "psums"
    description = "per-thread scalar accumulation (RMW loop)"
    sync_every = 1024

    def _body(self, slot: int, iters: int):
        return rmw(slot, iters)

    def _slot_plan(self, iters: int):
        return iters, iters, 1


class Padding(_ScalarBase):
    """Two fields per thread in a struct array; padding decides the layout.

    Each iteration updates both fields (``stats[myid].a``, ``stats[myid].b``),
    doubling the per-line write pressure relative to psums.
    """

    name = "padding"
    description = "per-thread two-field struct updates"
    slot_size = 16
    sync_every = 2048
    ipa = 3.5

    def _body(self, slot: int, iters: int):
        a0, w0 = rmw(slot, iters)
        a1, w1 = rmw(slot + 8, iters)
        addrs = np.empty(4 * iters, dtype=np.int64)
        writes = np.empty(4 * iters, dtype=bool)
        addrs[0::4], addrs[1::4] = a0[0::2], a0[1::2]
        addrs[2::4], addrs[3::4] = a1[0::2], a1[1::2]
        writes[0::4], writes[1::4] = w0[0::2], w0[1::2]
        writes[2::4], writes[3::4] = w1[0::2], w1[1::2]
        return addrs, writes

    slot_group = "stats"

    def _slot_plan(self, iters: int):
        return 2 * iters, 2 * iters, 2


class False1(_ScalarBase):
    """Store-only false sharing: ``flag[myid] = i`` in a tight loop."""

    name = "false1"
    description = "per-thread store-only flag updates"
    sync_every = 1536
    ipa = 2.5

    def _body(self, slot: int, iters: int):
        return stores(slot, iters)

    slot_group = "flag"

    def _slot_plan(self, iters: int):
        return 0, iters, 1


class _VectorBase(Workload):
    """Vector programs: threads process contiguous shares of shared arrays.

    ``cfg.size`` is the total element count; the arrays are read-shared
    (benign), the accumulators are the false-sharing site, and bad-ma visits
    each thread's share in a hostile order.
    """

    kind = "mt"
    modes = _ALL3
    train_sizes = (32_768, 98_304, 196_608)
    #: extra problem size used only by some training-plan rows
    extra_size = 393_216
    elem_size = 4
    n_arrays = 1
    slot_op = "rmw"
    sync_every = 2048
    ipa = LOOP_IPA

    def _generate(self, cfg: RunConfig) -> Sequence[ThreadTrace]:
        alloc = BumpAllocator()
        sync_word = alloc.alloc_line_aligned(64)
        # Figure 1 declares `int psum[MAXTHREADS]`: 4-byte slots, so even 16
        # threads' accumulators share a single 64-byte line when packed.
        slots = thread_slots(alloc, cfg.threads, cfg.mode, elem_size=4)
        arrays = [
            alloc.alloc_array(self.elem_size, cfg.size, align=64)
            for _ in range(self.n_arrays)
        ]
        threads = []
        for tid, (start, stop) in enumerate(partition(cfg.size, cfg.threads)):
            span = stop - start
            if span == 0:
                span = 1
                start, stop = 0, 1
            order = start + ordered_visit(
                span, cfg.mode, cfg.pattern, self.rng(cfg, tid)
            )
            loads = [arr.addr(order) for arr in arrays]
            addrs, writes = loop_body(loads, slots[tid], self._slot_op(order))
            addrs, writes = with_sync(addrs, writes, sync_word, self.sync_every)
            threads.append(ThreadTrace(addrs, writes, instr_per_access=self.ipa))
        return threads

    def _slot_op(self, order: np.ndarray) -> str:
        return self.slot_op

    def _array_names(self):
        if self.n_arrays == 1:
            return ["v"]
        return [f"v{i + 1}" for i in range(self.n_arrays)]

    def _plan(self, cfg: RunConfig):
        pb = PlanBuilder(self.name, cfg.threads)
        sync = pb.line_region("sync", 64, size=8, kind="sync")
        slots = pb.thread_slots("psum", cfg.mode, elem_size=4)
        arrays = [pb.array(name, self.elem_size, cfg.size)
                  for name in self._array_names()]
        kind = visit_kind(cfg.mode, cfg.pattern)
        bursts = hostile_bursts(cfg.mode, cfg.pattern,
                                elems_per_line(self.elem_size))
        slot_w = {"rmw": 1, "store": 1, "none": 0}[self.slot_op]
        slot_r = 1 if self.slot_op == "rmw" else 0
        for tid, (start, stop) in enumerate(partition(cfg.size, cfg.threads)):
            span = stop - start
            if span == 0:
                span, start, stop = 1, 0, 1
            for arr in arrays:
                pb.use(arr, tid, reads=span, start=start, stop=stop,
                       order=kind, bursts=bursts)
            pb.use(slots[tid], tid, reads=slot_r * span,
                   writes=slot_w * span, order="scattered")
            n_body = span * (self.n_arrays + slot_r + slot_w)
            pb.sync_use(sync, tid, n_body, self.sync_every)
        return pb.finish(self.ipa)


class PSumV(_VectorBase):
    """Per-thread sum over a vector share: ``psum[myid] += v[i]``."""

    name = "psumv"
    description = "parallel vector sum with per-thread accumulators"
    n_arrays = 1
    ipa = 3.0


class PDot(_VectorBase):
    """Figure 1's parallel dot product: loads v1[i], v2[i], RMW psum[myid]."""

    name = "pdot"
    description = "parallel dot product (Figure 1)"
    n_arrays = 2
    ipa = 3.0


class Count(_VectorBase):
    """Conditional counting: ``if pred(a[i]) count[myid]++``.

    The predicate holds for a fixed 1/64 of the indices (by index bits), so
    all modes do identical work; the accumulator is touched only on
    predicate-true iterations.  Its bad-fs mode is therefore *weak* false
    sharing — rare contended writes — which anchors the low end of the
    false-sharing intensity range the classifier must recognize (the
    streamcluster end of the spectrum, not the pdot end).
    """

    name = "count"
    description = "parallel predicate counting"
    n_arrays = 1
    ipa = 3.5

    def _generate(self, cfg: RunConfig) -> Sequence[ThreadTrace]:
        alloc = BumpAllocator()
        sync_word = alloc.alloc_line_aligned(64)
        slots = thread_slots(alloc, cfg.threads, cfg.mode, elem_size=4)
        arr = alloc.alloc_array(self.elem_size, cfg.size, align=64)
        threads = []
        for tid, (start, stop) in enumerate(partition(cfg.size, cfg.threads)):
            span = max(stop - start, 1)
            order = start % cfg.size + ordered_visit(
                span, cfg.mode, cfg.pattern, self.rng(cfg, tid)
            )
            hit = ((order & 63) == 1)  # predicate: rare (1/64) matches
            # Loads of a[i] for every i; RMW of the slot only where hit.
            base = arr.addr(order)
            # Build per-iteration blocks vectorized: 1 load always, +2 on hit.
            counts = 1 + 2 * hit.astype(np.int64)
            total = int(counts.sum())
            addrs = np.empty(total, dtype=np.int64)
            writes = np.zeros(total, dtype=bool)
            ends = np.cumsum(counts)
            starts = ends - counts
            addrs[starts] = base
            hs = starts[hit]
            addrs[hs + 1] = slots[tid]
            addrs[hs + 2] = slots[tid]
            writes[hs + 2] = True
            addrs, writes = with_sync(addrs, writes, sync_word, self.sync_every)
            threads.append(ThreadTrace(addrs, writes, instr_per_access=self.ipa))
        return threads

    def _plan(self, cfg: RunConfig):
        pb = PlanBuilder(self.name, cfg.threads)
        sync = pb.line_region("sync", 64, size=8, kind="sync")
        slots = pb.thread_slots("count", cfg.mode, elem_size=4)
        arr = pb.array("a", self.elem_size, cfg.size)
        kind = visit_kind(cfg.mode, cfg.pattern)
        bursts = hostile_bursts(cfg.mode, cfg.pattern,
                                elems_per_line(self.elem_size))
        for tid, (start, stop) in enumerate(partition(cfg.size, cfg.threads)):
            span = max(stop - start, 1)
            s0, s1 = clamp_range(start, span, cfg.size)
            hits = _residues_in(s0, s1, 64, 1)
            pb.use(arr, tid, reads=span, start=s0, stop=s1,
                   order=kind, bursts=bursts)
            pb.use(slots[tid], tid, reads=hits, writes=hits,
                   order="scattered")
            pb.sync_use(sync, tid, span + 2 * hits, self.sync_every)
        return pb.finish(self.ipa)


class PMatMult(Workload):
    """Parallel matrix multiply, naive -O0 shape: ``C[i,j] += A[i,k]*B[k,j]``.

    ``cfg.size`` is the matrix dimension n.  good: threads own contiguous
    row blocks of C (private accumulator lines).  bad-fs: C is partitioned
    element-cyclically, so adjacent C elements — same cache line — are
    updated by different threads in the inner loop.  bad-ma: row-block
    partition but the k loop runs in a hostile permuted order, wrecking
    locality in A rows and B columns.
    """

    name = "pmatmult"
    kind = "mt"
    modes = _ALL3
    train_sizes = (16, 24, 32)
    description = "parallel matrix multiply"
    ipa = 3.0
    sync_every = 4096

    def _generate(self, cfg: RunConfig) -> Sequence[ThreadTrace]:
        n = cfg.size
        alloc = BumpAllocator()
        sync_word = alloc.alloc_line_aligned(64)
        a = alloc.alloc_array(8, n * n, align=64)
        b = alloc.alloc_array(8, n * n, align=64)
        c = alloc.alloc_array(8, n * n, align=64)
        total = n * n
        if cfg.mode is Mode.BAD_FS:
            owned = [np.arange(tid, total, cfg.threads, dtype=np.int64)
                     for tid in range(cfg.threads)]
        else:
            owned = [np.arange(s, e, dtype=np.int64)
                     for s, e in partition(total, cfg.threads)]
        if cfg.mode is Mode.BAD_MA:
            korder = ordered_visit(n, cfg.mode, cfg.pattern, self.rng(cfg))
        else:
            korder = np.arange(n, dtype=np.int64)

        threads = []
        for tid in range(cfg.threads):
            cells = owned[tid]
            if cells.size == 0:
                cells = np.array([0], dtype=np.int64)
            i = cells // n
            j = cells % n
            # Inner loop over k for each owned cell: 4 accesses per k.
            nk = n
            m = cells.size
            a_idx = (i[:, None] * n + korder[None, :]).ravel()
            b_idx = (korder[None, :] * n + j[:, None]).ravel()
            c_addr = c.addr(cells)
            addrs = np.empty(m * nk * 4, dtype=np.int64)
            writes = np.zeros(m * nk * 4, dtype=bool)
            addrs[0::4] = a.addr(a_idx)
            addrs[1::4] = b.addr(b_idx)
            addrs[2::4] = np.repeat(c_addr, nk)
            addrs[3::4] = np.repeat(c_addr, nk)
            writes[3::4] = True
            addrs, writes = with_sync(addrs, writes, sync_word, self.sync_every)
            threads.append(ThreadTrace(addrs, writes, instr_per_access=self.ipa))
        return threads

    def _plan(self, cfg: RunConfig):
        n = cfg.size
        total = n * n
        pb = PlanBuilder(self.name, cfg.threads)
        sync = pb.line_region("sync", 64, size=8, kind="sync")
        a = pb.array("A", 8, total)
        b = pb.array("B", 8, total)
        c = pb.array("C", 8, total)
        epl = elems_per_line(8)
        hostile = cfg.mode is Mode.BAD_MA
        for tid in range(cfg.threads):
            if cfg.mode is Mode.BAD_FS:
                m = len(range(tid, total, cfg.threads))
                cells = (tid, total, cfg.threads) if m else (0, 1, 1)
            else:
                start, stop = partition(total, cfg.threads)[tid]
                m = stop - start
                cells = (start, stop, 1) if m else (0, 1, 1)
            m = max(m, 1)
            # A: the rows of the owned cells, swept once per owned cell.
            last = cells[0] + (m - 1) * cells[2]
            a_rng = ((cells[0] // n) * n, (last // n + 1) * n)
            pb.use(a, tid, reads=m * n, start=a_rng[0], stop=a_rng[1],
                   order="scattered" if hostile else "linear",
                   bursts=float(epl) if hostile else 1.0)
            # B: column walks — every owned cell reads a full column.
            pb.use(b, tid, reads=m * n, stop=total, order="scattered",
                   bursts=max(1.0, m * float(epl) / n))
            # C: the owned cells, RMW n times each, consecutively.
            pb.use(c, tid, reads=m * n, writes=m * n, start=cells[0],
                   stop=cells[1], step=cells[2], order="linear")
            pb.sync_use(sync, tid, 4 * m * n, self.sync_every)
        return pb.finish(self.ipa)


class PMatCompare(Workload):
    """Parallel matrix compare: per-thread mismatch counters.

    Each thread compares its share of element pairs of two n x n matrices and
    counts mismatches (a fixed eighth of indices, by index bits, so work is
    identical across modes).
    """

    name = "pmatcompare"
    kind = "mt"
    modes = _ALL3
    train_sizes = (96, 144, 192)
    description = "parallel matrix comparison"
    ipa = 3.0
    sync_every = 2048

    def _generate(self, cfg: RunConfig) -> Sequence[ThreadTrace]:
        n2 = cfg.size * cfg.size
        alloc = BumpAllocator()
        sync_word = alloc.alloc_line_aligned(64)
        slots = thread_slots(alloc, cfg.threads, cfg.mode)
        a = alloc.alloc_array(8, n2, align=64)
        b = alloc.alloc_array(8, n2, align=64)
        threads = []
        for tid, (start, stop) in enumerate(partition(n2, cfg.threads)):
            span = max(stop - start, 1)
            order = start % n2 + ordered_visit(
                span, cfg.mode, cfg.pattern, self.rng(cfg, tid)
            )
            mismatch = (order & 7) == 3  # deterministic 1/8 of indices
            counts = 2 + 2 * mismatch.astype(np.int64)
            total = int(counts.sum())
            addrs = np.empty(total, dtype=np.int64)
            writes = np.zeros(total, dtype=bool)
            ends = np.cumsum(counts)
            starts = ends - counts
            addrs[starts] = a.addr(order)
            addrs[starts + 1] = b.addr(order)
            hs = starts[mismatch]
            addrs[hs + 2] = slots[tid]
            addrs[hs + 3] = slots[tid]
            writes[hs + 3] = True
            addrs, writes = with_sync(addrs, writes, sync_word, self.sync_every)
            threads.append(ThreadTrace(addrs, writes, instr_per_access=self.ipa))
        return threads

    def _plan(self, cfg: RunConfig):
        n2 = cfg.size * cfg.size
        pb = PlanBuilder(self.name, cfg.threads)
        sync = pb.line_region("sync", 64, size=8, kind="sync")
        slots = pb.thread_slots("mismatch", cfg.mode)
        a = pb.array("A", 8, n2)
        b = pb.array("B", 8, n2)
        kind = visit_kind(cfg.mode, cfg.pattern)
        bursts = hostile_bursts(cfg.mode, cfg.pattern, elems_per_line(8))
        for tid, (start, stop) in enumerate(partition(n2, cfg.threads)):
            span = max(stop - start, 1)
            s0, s1 = clamp_range(start, span, n2)
            hits = _residues_in(s0, s1, 8, 3)
            for arr in (a, b):
                pb.use(arr, tid, reads=span, start=s0, stop=s1,
                       order=kind, bursts=bursts)
            pb.use(slots[tid], tid, reads=hits, writes=hits,
                   order="scattered")
            pb.sync_use(sync, tid, 2 * span + 2 * hits, self.sync_every)
        return pb.finish(self.ipa)


MT_PROGRAMS = (PSums, Padding, False1, PSumV, PDot, Count, PMatMult, PMatCompare)
