"""A declarative builder for custom workloads.

Modeling your own application shouldn't require subclassing
:class:`Workload`: most parallel loops decompose into the same ingredients
the mini-programs and suite models use — streamed input, scattered lookups,
per-thread accumulators (padded or packed), stack traffic, synchronization.
The builder assembles those into a ready workload:

    pool = (WorkloadBuilder("worker_pool", threads_hint=8)
            .stream(elements=40_000, elem_size=8)
            .accumulator(fields=2, packed=True, every=1)
            .gather(table_bytes=32_768, every=6)
            .sync(every=4096)
            .build())
    detector.classify(pool, RunConfig(threads=8, mode="bad-fs", size=40_000))

``mode`` keeps its usual meaning: ``good`` pads the accumulators,
``bad-fs`` packs them, ``bad-ma`` scrambles the stream order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.memory.allocator import BumpAllocator
from repro.memory.layout import LINE_SIZE
from repro.trace.access import ThreadTrace
from repro.analysis.symbols import Symbol
from repro.workloads.base import Mode, RunConfig, Workload, ordered_visit, partition
from repro.workloads.builders import with_sync
from repro.workloads.plan import (
    PlanBuilder,
    clamp_range,
    elems_per_line,
    gather_bursts,
    hostile_bursts,
    visit_kind,
)


@dataclass(frozen=True)
class _Stream:
    elements: int
    elem_size: int
    shared: bool


@dataclass(frozen=True)
class _Accumulator:
    fields: int
    packed: bool
    every: int
    field_size: int


@dataclass(frozen=True)
class _Gather:
    table_bytes: int
    every: int
    shared: bool


class BuiltWorkload(Workload):
    """The workload a :class:`WorkloadBuilder` produces."""

    kind = "mt"
    modes = frozenset({Mode.GOOD, Mode.BAD_FS, Mode.BAD_MA})

    def __init__(self, name, stream, accumulators, gathers, sync_every,
                 stack_every, ipa, threads_hint):
        self.name = name
        self._stream = stream
        self._accumulators = tuple(accumulators)
        self._gathers = tuple(gathers)
        self._sync_every = sync_every
        self._stack_every = stack_every
        self._ipa = ipa
        self.train_sizes = (stream.elements,) if stream else (16_384,)
        self.description = f"user-built workload ({threads_hint} threads hint)"

    def _generate(self, cfg: RunConfig) -> Sequence[ThreadTrace]:
        alloc = BumpAllocator()
        sync_word = alloc.alloc_line_aligned(64)

        acc_bases = []
        for acc in self._accumulators:
            struct = acc.field_size * acc.fields
            if acc.packed and cfg.mode is Mode.BAD_FS:
                stride = struct
            else:
                stride = ((struct + LINE_SIZE - 1) // LINE_SIZE) * LINE_SIZE
            acc_bases.append(
                (alloc.alloc(stride * cfg.threads, align=64), stride)
            )

        stream = self._stream
        n_elems = cfg.size if stream is None else max(cfg.size, cfg.threads)
        elem = stream.elem_size if stream else 8
        input_arr = alloc.alloc_array(elem, n_elems, align=64)

        shared_tables = {}
        threads = []
        bounds = partition(n_elems, cfg.threads)
        for tid, (start, stop) in enumerate(bounds):
            span = max(stop - start, 1)
            rng = self.rng(cfg, tid)
            order = (start % n_elems) + ordered_visit(
                span, cfg.mode, cfg.pattern, rng
            )
            pieces_a: List[np.ndarray] = [input_arr.addr(order % n_elems)]
            pieces_w: List[np.ndarray] = [np.zeros(span, bool)]
            it = np.arange(span, dtype=np.int64)

            blocks = [(pieces_a[0], pieces_w[0])]
            for g_i, g in enumerate(self._gathers):
                if g.shared:
                    table = shared_tables.get(g_i)
                    if table is None:
                        table = alloc.alloc_array(8, g.table_bytes // 8,
                                                  align=64)
                        shared_tables[g_i] = table
                else:
                    table = alloc.alloc_array(8, g.table_bytes // 8, align=64)
                hit = it % g.every == g.every - 1
                idx = rng.integers(0, table.length, size=int(hit.sum()))
                g_addr = np.zeros(span, np.int64)
                g_addr[hit] = table.addr(idx)
                blocks.append(("gather", g_addr, None, hit))

            for (base, stride), acc in zip(acc_bases, self._accumulators):
                slot = base + tid * stride
                hit = it % acc.every == acc.every - 1
                blocks.append(("acc", slot, acc, hit))

            if self._stack_every:
                stack = alloc.alloc_line_aligned(64)
                hit = it % self._stack_every == 0
                blocks.append(("stack", stack, None, hit))

            addrs, writes = _assemble(span, blocks)
            addrs, writes = with_sync(addrs, writes, sync_word,
                                      self._sync_every)
            threads.append(ThreadTrace(addrs, writes,
                                       instr_per_access=self._ipa))
        return threads

    def _plan(self, cfg: RunConfig):
        pb = PlanBuilder(self.name, cfg.threads)
        sync = pb.line_region("sync", 64, size=8, kind="sync")

        acc_syms = []
        for a_i, acc in enumerate(self._accumulators):
            struct = acc.field_size * acc.fields
            if acc.packed and cfg.mode is Mode.BAD_FS:
                stride = struct
            else:
                stride = ((struct + LINE_SIZE - 1) // LINE_SIZE) * LINE_SIZE
            base = pb.alloc.alloc(stride * cfg.threads, align=64)
            group = f"acc{a_i}"
            acc_syms.append([
                pb.symbols.add(Symbol(
                    f"{group}[t{t}]", base + t * stride, struct,
                    kind="struct", tid=t, elem_size=acc.field_size,
                    group=group,
                ))
                for t in range(cfg.threads)
            ])

        stream = self._stream
        n_elems = cfg.size if stream is None else max(cfg.size, cfg.threads)
        elem = stream.elem_size if stream else 8
        input_sym = pb.array("input", elem, n_elems)
        kind = visit_kind(cfg.mode, cfg.pattern)
        sbursts = hostile_bursts(cfg.mode, cfg.pattern, elems_per_line(elem))

        shared_tables: dict = {}
        for tid, (start, stop) in enumerate(partition(n_elems, cfg.threads)):
            span = max(stop - start, 1)
            s0, s1 = clamp_range(start, span, n_elems)
            pb.use(input_sym, tid, reads=span, start=s0, stop=s1,
                   order=kind, bursts=sbursts)
            n_body = span
            for g_i, g in enumerate(self._gathers):
                if g.shared:
                    tsym = shared_tables.get(g_i)
                    if tsym is None:
                        tsym = pb.array(f"table{g_i}", 8, g.table_bytes // 8,
                                        kind="table", group=f"table{g_i}")
                        shared_tables[g_i] = tsym
                else:
                    tsym = pb.array(f"table{g_i}[t{tid}]", 8,
                                    g.table_bytes // 8, kind="table",
                                    tid=tid, group=f"table{g_i}")
                hits = span // g.every
                lines = max(1, g.table_bytes // LINE_SIZE)
                pb.use(tsym, tid, reads=hits, order="scattered",
                       bursts=gather_bursts(hits, lines,
                                            g.every * float(lines)))
                n_body += hits
            for syms, acc in zip(acc_syms, self._accumulators):
                hits = span // acc.every
                pb.use(syms[tid], tid, reads=hits * acc.fields,
                       writes=hits * acc.fields, stop=acc.fields,
                       order="scattered")
                n_body += 2 * acc.fields * hits
            if self._stack_every:
                ssym = pb.line_region(f"stack[t{tid}]", 64, size=8,
                                      kind="stack", tid=tid, group="stack")
                hits = (span + self._stack_every - 1) // self._stack_every
                pb.use(ssym, tid, reads=hits, writes=hits, order="scattered")
                n_body += 2 * hits
            pb.sync_use(sync, tid, n_body, self._sync_every)
        return pb.finish(self._ipa)


def _assemble(span: int, blocks) -> tuple:
    """Interleave per-iteration access blocks into one stream."""
    counts = np.ones(span, dtype=np.int64)  # the stream load
    specs = []
    for kind, payload, acc, hit in blocks[1:]:
        if kind == "acc":
            counts += 2 * acc.fields * hit.astype(np.int64)
        elif kind == "stack":
            counts += 2 * hit.astype(np.int64)
        else:  # gather
            counts += hit.astype(np.int64)
        specs.append((kind, payload, acc, hit))
    total = int(counts.sum())
    addrs = np.empty(total, np.int64)
    writes = np.zeros(total, bool)
    ends = np.cumsum(counts)
    starts = ends - counts
    addrs[starts] = blocks[0][0]
    pos = starts + 1
    for kind, payload, acc, hit in specs:
        hs = pos[hit]
        if kind == "gather":
            addrs[hs] = payload[hit]
            pos = pos + hit.astype(np.int64)
        elif kind == "stack":
            addrs[hs] = payload
            addrs[hs + 1] = payload
            writes[hs + 1] = True
            pos = pos + 2 * hit.astype(np.int64)
        else:  # accumulator
            for f in range(acc.fields):
                off = payload + f * acc.field_size
                addrs[hs + 2 * f] = off
                addrs[hs + 2 * f + 1] = off
                writes[hs + 2 * f + 1] = True
            pos = pos + 2 * acc.fields * hit.astype(np.int64)
    return addrs, writes


class WorkloadBuilder:
    """Fluent construction of :class:`BuiltWorkload` instances."""

    def __init__(self, name: str, threads_hint: int = 4) -> None:
        if not name:
            raise ConfigError("workload needs a name")
        self._name = name
        self._threads_hint = threads_hint
        self._stream: Optional[_Stream] = None
        self._accumulators: List[_Accumulator] = []
        self._gathers: List[_Gather] = []
        self._sync_every = 2048
        self._stack_every = 1
        self._ipa = 3.0

    def stream(self, elements: int, elem_size: int = 4,
               shared: bool = True) -> "WorkloadBuilder":
        """Linear pass over an input array, split across threads."""
        if elements < 1 or elem_size < 1:
            raise ConfigError("stream needs positive elements and elem_size")
        self._stream = _Stream(elements, elem_size, shared)
        return self

    def accumulator(self, fields: int = 1, packed: bool = True,
                    every: int = 1, field_size: int = 8) -> "WorkloadBuilder":
        """Per-thread read-modify-write state.

        ``packed=True`` makes bad-fs mode pack the per-thread structs into
        shared cache lines (the bug); good mode always pads.
        """
        if fields < 1 or every < 1 or field_size < 1:
            raise ConfigError("accumulator parameters must be positive")
        self._accumulators.append(_Accumulator(fields, packed, every,
                                               field_size))
        return self

    def gather(self, table_bytes: int, every: int,
               shared: bool = False) -> "WorkloadBuilder":
        """Scattered lookups into a table (hash probes, pointer chasing)."""
        if table_bytes < 64 or every < 1:
            raise ConfigError("gather needs table_bytes >= 64 and every >= 1")
        self._gathers.append(_Gather(table_bytes, every, shared))
        return self

    def sync(self, every: int) -> "WorkloadBuilder":
        """Accesses between truly-shared synchronization touches."""
        if every < 1:
            raise ConfigError("sync every must be positive")
        self._sync_every = every
        return self

    def stack_traffic(self, every: int) -> "WorkloadBuilder":
        """Iterations between hot private stack RMWs (0 disables)."""
        if every < 0:
            raise ConfigError("stack every must be >= 0")
        self._stack_every = every
        return self

    def instructions_per_access(self, ipa: float) -> "WorkloadBuilder":
        if ipa < 1.0:
            raise ConfigError("ipa must be >= 1")
        self._ipa = ipa
        return self

    def build(self) -> BuiltWorkload:
        if self._stream is None:
            raise ConfigError("a workload needs at least a stream()")
        return BuiltWorkload(
            self._name, self._stream, self._accumulators, self._gathers,
            self._sync_every, self._stack_every, self._ipa,
            self._threads_hint,
        )
