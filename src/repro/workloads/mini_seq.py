"""The sequential mini-programs of Section 2.2.2.

Three element-wise array programs (read / write / read-modify-write) and a
sequential matrix multiply with selectable loop structure.  All expose only
``good`` and ``bad-ma``: with one thread there is nothing to falsely share.
The good/bad-ma pair performs the same element visits; only the order (and
for matmul, the loop nest) differs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.memory.allocator import BumpAllocator
from repro.trace.access import ThreadTrace
from repro.workloads.base import (
    Mode,
    RunConfig,
    Workload,
    ordered_visit,
)
from repro.workloads.plan import (
    PlanBuilder,
    elems_per_line,
    hostile_bursts,
    visit_kind,
)

_SEQ_MODES = frozenset({Mode.GOOD, Mode.BAD_MA})


class _SeqArrayBase(Workload):
    """Element-wise pass over an array; ``cfg.size`` is the element count.

    Sizes are chosen so the footprint exceeds L2 (and for the larger sizes
    the DTLB reach), making the good/bad-ma contrast architectural rather
    than accidental: 8-byte elements mean 96k elements = 768 KiB.
    """

    kind = "seq"
    modes = _SEQ_MODES
    train_sizes = (49_152, 131_072, 262_144)
    elem_size = 8
    ipa = 3.0
    sweeps = 1

    def _generate(self, cfg: RunConfig) -> Sequence[ThreadTrace]:
        alloc = BumpAllocator()
        arr = alloc.alloc_array(self.elem_size, cfg.size, align=64)
        pieces_a = []
        pieces_w = []
        for s in range(self.sweeps):
            order = ordered_visit(cfg.size, cfg.mode, cfg.pattern,
                                  self.rng(cfg, s))
            a, w = self._visit(arr.addr(order))
            pieces_a.append(a)
            pieces_w.append(w)
        return [ThreadTrace(np.concatenate(pieces_a),
                            np.concatenate(pieces_w),
                            instr_per_access=self.ipa)]

    def _visit(self, addrs: np.ndarray):
        raise NotImplementedError

    #: (reads, writes) one visited element produces.
    visit_rw = (1, 0)

    def _plan(self, cfg: RunConfig):
        pb = PlanBuilder(self.name, 1)
        arr = pb.array("a", self.elem_size, cfg.size)
        kind = visit_kind(cfg.mode, cfg.pattern)
        per_sweep = hostile_bursts(cfg.mode, cfg.pattern,
                                   elems_per_line(self.elem_size))
        r, w = self.visit_rw
        pb.use(arr, 0, reads=r * cfg.size * self.sweeps,
               writes=w * cfg.size * self.sweeps, stop=cfg.size,
               order=kind, bursts=per_sweep * self.sweeps)
        return pb.finish(self.ipa)


class SeqRead(_SeqArrayBase):
    """Read every element of an array."""

    name = "seq_read"
    description = "element-wise array read"

    visit_rw = (1, 0)

    def _visit(self, addrs):
        return addrs, np.zeros(addrs.size, dtype=bool)


class SeqWrite(_SeqArrayBase):
    """Write every element of an array."""

    name = "seq_write"
    description = "element-wise array write"
    ipa = 2.5

    visit_rw = (0, 1)

    def _visit(self, addrs):
        return addrs, np.ones(addrs.size, dtype=bool)


class SeqRMW(_SeqArrayBase):
    """Read, modify, write back every element."""

    name = "seq_rmw"
    description = "element-wise read-modify-write"
    ipa = 3.5

    visit_rw = (1, 1)

    def _visit(self, addrs):
        out_a = np.repeat(addrs, 2)
        out_w = np.zeros(out_a.size, dtype=bool)
        out_w[1::2] = True
        return out_a, out_w


class SeqMatMul(Workload):
    """Sequential rectangular matmul: C[m,n] = A[m,K] x B[K,n], un-hoisted.

    ``cfg.size`` is the inner dimension K; m and n are small and fixed so B
    (K x n) is the large operand.  Both modes execute the identical 4-access
    body ``load A[i,k]; load B[k,j]; load C[i,j]; store C[i,j]`` exactly
    m*n*K times; only the loop nest differs:

    * good   — (i, k, j): B is walked row-wise, unit stride;
    * bad-ma — (i, j, k): B is walked column-wise, one cache line per access,
      the classic hostile nest.
    """

    name = "seq_matmul"
    kind = "seq"
    modes = _SEQ_MODES
    train_sizes = (2_048, 4_096, 8_192)
    description = "sequential matrix multiply (loop-order study)"
    ipa = 3.0
    m_rows = 2
    n_cols = 8

    def _generate(self, cfg: RunConfig) -> Sequence[ThreadTrace]:
        big_k = cfg.size
        m, n = self.m_rows, self.n_cols
        alloc = BumpAllocator()
        a = alloc.alloc_array(8, m * big_k, align=64)
        b = alloc.alloc_array(8, big_k * n, align=64)
        c = alloc.alloc_array(8, m * n, align=64)
        if cfg.mode is Mode.GOOD:
            # (i, k, j): innermost j sweeps a row of B.
            ii, kk, jj = np.meshgrid(
                np.arange(m), np.arange(big_k), np.arange(n), indexing="ij"
            )
        else:
            # (i, j, k): innermost k sweeps a column of B.
            ii, jj, kk = np.meshgrid(
                np.arange(m), np.arange(n), np.arange(big_k), indexing="ij"
            )
        ii, jj, kk = ii.ravel(), jj.ravel(), kk.ravel()
        total = ii.size
        addrs = np.empty(total * 4, dtype=np.int64)
        writes = np.zeros(total * 4, dtype=bool)
        addrs[0::4] = a.addr(ii * big_k + kk)
        addrs[1::4] = b.addr(kk * n + jj)
        addrs[2::4] = c.addr(ii * n + jj)
        addrs[3::4] = c.addr(ii * n + jj)
        writes[3::4] = True
        return [ThreadTrace(addrs, writes, instr_per_access=self.ipa)]

    def _plan(self, cfg: RunConfig):
        big_k = cfg.size
        m, n = self.m_rows, self.n_cols
        pb = PlanBuilder(self.name, 1)
        a = pb.array("A", 8, m * big_k)
        b = pb.array("B", 8, big_k * n)
        c = pb.array("C", 8, m * n)
        total = m * n * big_k
        hostile = cfg.mode is Mode.BAD_MA
        # good (i,k,j): A rows swept once (hot); B rows re-read per i;
        # C held hot throughout.  bad-ma (i,j,k): A rows re-read per j,
        # B walked column-wise so every line cools between touches.
        pb.use(a, 0, reads=total, stop=m * big_k,
               order="scattered" if hostile else "linear",
               bursts=float(n) if hostile else 1.0)
        pb.use(b, 0, reads=total, stop=big_k * n, order="scattered",
               bursts=float(m * n) if hostile else float(m))
        pb.use(c, 0, reads=total, writes=total, stop=m * n, order="scattered")
        return pb.finish(self.ipa)


SEQ_PROGRAMS = (SeqRead, SeqWrite, SeqRMW, SeqMatMul)
