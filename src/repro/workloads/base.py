"""Workload abstractions: modes, run configuration, and the base class.

A workload is a deterministic trace generator: ``trace(config)`` returns the
per-thread memory-access streams the equivalent C program would produce.  The
three modes mirror the paper's Section 2.1:

* ``good``    — private/padded data, linear access;
* ``bad-fs``  — per-thread data packed into shared cache lines;
* ``bad-ma``  — same computation, cache-hostile access order.

Modes never change the amount of computation: a mode flips data *placement*
(good vs bad-fs) or visit *order* (good vs bad-ma), so instruction and access
counts match across modes and only the hardware events differ — which is the
property that makes normalized event counts a fair classification signal.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import FrozenSet, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError, WorkloadError
from repro.trace.access import ProgramTrace, ThreadTrace
from repro.utils.rng import rng_for


class Mode(str, enum.Enum):
    """The paper's three-way operating mode of a mini-program."""

    GOOD = "good"
    BAD_FS = "bad-fs"
    BAD_MA = "bad-ma"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Access patterns for bad-ma / sequential workloads (Section 2.2.2).
PATTERNS = ("linear", "random", "stride2", "stride4", "stride8", "stride16")


def parse_mode(value) -> Mode:
    """Accept a Mode or its string form."""
    if isinstance(value, Mode):
        return value
    try:
        return Mode(value)
    except ValueError:
        raise ConfigError(f"unknown mode: {value!r}") from None


def stride_of(pattern: str) -> int:
    """Stride length for a ``strideN`` pattern name (1 for linear)."""
    if pattern == "linear":
        return 1
    if pattern.startswith("stride"):
        try:
            s = int(pattern[len("stride"):])
        except ValueError:
            raise ConfigError(f"bad stride pattern: {pattern!r}") from None
        if s <= 1:
            raise ConfigError(f"stride must be > 1: {pattern!r}")
        return s
    raise ConfigError(f"pattern {pattern!r} has no stride")


@dataclass(frozen=True)
class RunConfig:
    """Everything that determines one program run.

    ``size`` is the problem size in workload-specific units (iterations per
    thread for scalar programs, total elements for vector programs, matrix
    dimension for matrix programs).  ``pattern`` selects the bad-ma access
    order; ``rep`` distinguishes repeated runs of the same configuration
    (it perturbs only measurement noise seeds, never the computation).
    """

    threads: int = 1
    mode: Mode = Mode.GOOD
    size: int = 1 << 14
    pattern: str = "random"
    seed: int = 0
    rep: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "mode", parse_mode(self.mode))
        if self.threads < 1:
            raise ConfigError("threads must be >= 1")
        if self.size < 1:
            raise ConfigError("size must be >= 1")
        if self.pattern not in PATTERNS:
            raise ConfigError(
                f"pattern {self.pattern!r} not one of {PATTERNS}"
            )
        if self.rep < 0:
            raise ConfigError("rep must be >= 0")

    def with_(self, **kw) -> "RunConfig":
        return replace(self, **kw)

    def run_id(self) -> str:
        """Stable identifier for seeding measurement noise."""
        return (
            f"t{self.threads}-{self.mode.value}-n{self.size}"
            f"-{self.pattern}-s{self.seed}-r{self.rep}"
        )


class Workload(ABC):
    """Base class for mini-programs and suite workload models."""

    #: Unique registry name, e.g. "pdot".
    name: str = "abstract"
    #: "mt" (multi-threaded mini-program) or "seq" (sequential).
    kind: str = "mt"
    #: Modes this workload supports.
    modes: FrozenSet[Mode] = frozenset({Mode.GOOD})
    #: Problem sizes used when collecting training data.
    train_sizes: Tuple[int, ...] = ()
    description: str = ""

    def validate(self, cfg: RunConfig) -> None:
        """Reject configurations this workload cannot run."""
        if cfg.mode not in self.modes:
            raise WorkloadError(
                f"{self.name} does not support mode {cfg.mode.value}"
            )
        if self.kind == "seq" and cfg.threads != 1:
            raise WorkloadError(f"{self.name} is sequential; threads must be 1")
        # Note bad-fs with one thread is allowed: the packed layout is
        # harmless then (Table 1's Method 2 at T=1 runs at Method 1 speed).

    def trace(self, cfg: RunConfig) -> ProgramTrace:
        """Generate the program trace for this configuration."""
        self.validate(cfg)
        threads = self._generate(cfg)
        return ProgramTrace(
            list(threads),
            name=f"{self.name}[{cfg.run_id()}]",
            meta={
                "workload": self.name,
                "kind": self.kind,
                "mode": cfg.mode.value,
                "threads": cfg.threads,
                "size": cfg.size,
                "pattern": cfg.pattern,
                "rep": cfg.rep,
            },
        )

    @abstractmethod
    def _generate(self, cfg: RunConfig) -> Sequence[ThreadTrace]:
        """Produce one ThreadTrace per thread (already validated config)."""

    def plan(self, cfg: RunConfig):
        """Symbolic access plan for this configuration (no trace generated).

        Returns an :class:`repro.workloads.plan.AccessPlan` mirroring what
        :meth:`trace` would produce: the same allocator layout (as named
        symbols) and per-thread region accesses, without materializing a
        single address.  Raises :class:`WorkloadError` for workloads that
        do not expose a plan.
        """
        self.validate(cfg)
        plan = self._plan(cfg)
        plan.meta.setdefault("workload", self.name)
        plan.meta.setdefault("kind", self.kind)
        plan.meta.setdefault("mode", cfg.mode.value)
        plan.meta.setdefault("threads", cfg.threads)
        plan.meta.setdefault("size", cfg.size)
        plan.meta.setdefault("pattern", cfg.pattern)
        return plan.validate()

    def _plan(self, cfg: RunConfig):
        raise WorkloadError(
            f"{self.name} does not expose a symbolic access plan"
        )

    def cache_key(self, cfg: RunConfig) -> tuple:
        """Simulation-cache key: everything that changes the computation.

        ``rep`` is deliberately excluded — repeats change measurement noise
        only.
        """
        return (cfg.threads, cfg.mode, cfg.size, cfg.pattern, cfg.seed)

    def rng(self, cfg: RunConfig, *extra) -> np.random.Generator:
        """Deterministic generator for this (workload, config) pair.

        Note ``rep`` is deliberately excluded: repeated runs perform the
        same computation; only measurement differs.
        """
        return rng_for(self.name, cfg.threads, cfg.mode.value, cfg.size,
                       cfg.pattern, cfg.seed, *extra)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


def partition(total: int, parts: int) -> list:
    """Split ``total`` items into ``parts`` contiguous (start, stop) ranges."""
    if parts <= 0:
        raise ConfigError("parts must be positive")
    base, extra = divmod(total, parts)
    bounds = []
    start = 0
    for i in range(parts):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


#: Instruction weight shared by the accumulator-loop mini-programs so that
#: good / bad-fs / bad-ma runs of one program retire equal instruction counts.
LOOP_IPA = 3.0


def ordered_visit(
    n: int, mode: Mode, pattern: str, rng: np.random.Generator
) -> np.ndarray:
    """Visit order of ``n`` items: linear for good/bad-fs, hostile for bad-ma.

    bad-ma preserves the same-computation property: strides co-prime with n
    and permutations both visit every index exactly once per sweep.
    """
    idx = np.arange(n, dtype=np.int64)
    if mode is not Mode.BAD_MA:
        return idx
    if pattern == "random":
        return rng.permutation(n).astype(np.int64)
    stride = stride_of(pattern)
    # Walk in `stride` interleaved passes so each index appears once.
    return np.concatenate(
        [np.arange(s, n, stride, dtype=np.int64) for s in range(stride)]
    )
