"""Mini-programs (Section 2.2) and the workload abstractions."""

from repro.workloads.builder import BuiltWorkload, WorkloadBuilder
from repro.workloads.base import (
    LOOP_IPA,
    PATTERNS,
    Mode,
    RunConfig,
    Workload,
    ordered_visit,
    parse_mode,
    partition,
    stride_of,
)
from repro.workloads.mini_mt import MT_PROGRAMS
from repro.workloads.mini_seq import SEQ_PROGRAMS
from repro.workloads.registry import (
    all_workloads,
    get_workload,
    mt_miniprograms,
    register,
    seq_miniprograms,
)

__all__ = [
    "BuiltWorkload",
    "WorkloadBuilder",
    "LOOP_IPA",
    "PATTERNS",
    "Mode",
    "RunConfig",
    "Workload",
    "ordered_visit",
    "parse_mode",
    "partition",
    "stride_of",
    "MT_PROGRAMS",
    "SEQ_PROGRAMS",
    "all_workloads",
    "get_workload",
    "mt_miniprograms",
    "register",
    "seq_miniprograms",
]
