"""Shared trace-building blocks for the mini-programs.

Every builder keeps the paper's "same computation, different layout/order"
discipline: the access and instruction counts of a workload are identical
across its modes; only addresses (good vs bad-fs) or visit order (good vs
bad-ma) change.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.memory.allocator import BumpAllocator
from repro.workloads.base import Mode

#: Iterations between touches of the truly-shared synchronization word.
#: Real pthreads programs are never coherence-silent: progress counters,
#: barrier words and lock state produce a low rate of genuine sharing.  This
#: floor is what keeps the learned HITM threshold honest — it must separate
#: false sharing from ordinary synchronization, not from zero.
SYNC_EVERY = 1024


def thread_slots(
    alloc: BumpAllocator, nthreads: int, mode: Mode, elem_size: int = 8
) -> List[int]:
    """Per-thread accumulator addresses: packed iff the mode is bad-fs."""
    return alloc.per_thread_slots(
        nthreads, elem_size, padded=(mode is not Mode.BAD_FS)
    )


def rmw(addr: int, n: int) -> Tuple[np.ndarray, np.ndarray]:
    """``n`` read-modify-write pairs to one address (load, store, load, ...)."""
    addrs = np.full(2 * n, addr, dtype=np.int64)
    writes = np.zeros(2 * n, dtype=bool)
    writes[1::2] = True
    return addrs, writes


def stores(addr: int, n: int) -> Tuple[np.ndarray, np.ndarray]:
    """``n`` plain stores to one address."""
    return np.full(n, addr, dtype=np.int64), np.ones(n, dtype=bool)


def loop_body(
    load_addrs: Sequence[np.ndarray],
    slot: int,
    slot_op: str = "rmw",
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-iteration body: load each stream's element, then touch the slot.

    ``slot_op``: "rmw" (load+store, the `acc += x` shape), "store", or
    "none" (slot untouched — e.g. predicate loops where no accumulation
    happens this iteration).
    """
    if not load_addrs:
        raise ValueError("need at least one load stream")
    n = load_addrs[0].size
    for a in load_addrs:
        if a.size != n:
            raise ValueError("load streams must be equal length")
    extra = {"rmw": 2, "store": 1, "none": 0}[slot_op]
    k = len(load_addrs) + extra
    addrs = np.empty(n * k, dtype=np.int64)
    writes = np.zeros(n * k, dtype=bool)
    for j, a in enumerate(load_addrs):
        addrs[j::k] = a
    if slot_op == "rmw":
        addrs[len(load_addrs)::k] = slot
        addrs[len(load_addrs) + 1::k] = slot
        writes[len(load_addrs) + 1::k] = True
    elif slot_op == "store":
        addrs[len(load_addrs)::k] = slot
        writes[len(load_addrs)::k] = True
    return addrs, writes


def inject_periodic(
    addrs: np.ndarray,
    writes: np.ndarray,
    every: int,
    ins_addrs: np.ndarray,
    ins_writes: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Insert a fixed access block after every ``every`` accesses.

    Used for the periodic truly-shared synchronization touch.
    """
    if every <= 0:
        raise ValueError("every must be positive")
    n = addrs.size
    pos = np.arange(every, n + 1, every, dtype=np.int64)
    if pos.size == 0:
        return addrs, writes
    k = ins_addrs.size
    posr = np.repeat(pos, k)
    return (
        np.insert(addrs, posr, np.tile(ins_addrs, pos.size)),
        np.insert(writes, posr, np.tile(ins_writes, pos.size)),
    )


def with_sync(
    addrs: np.ndarray,
    writes: np.ndarray,
    sync_word: int,
    every: int = SYNC_EVERY,
) -> Tuple[np.ndarray, np.ndarray]:
    """Add the periodic true-sharing RMW on the shared sync word."""
    ia, iw = rmw(sync_word, 1)
    return inject_periodic(addrs, writes, every, ia, iw)
