"""Symbolic access plans: what a workload *would* do, without a trace.

A trace generator performs two separable jobs: it lays out named data in a
simulated address space (deterministically, via :class:`BumpAllocator`), and
it emits a per-thread access stream over that data.  An
:class:`AccessPlan` captures both jobs *symbolically*: a
:class:`~repro.analysis.symbols.SymbolTable` of every allocated object at
its exact generated address, plus a set of :class:`RegionUse` records —
"thread 2 performs 40k reads and 40k writes over elements [0, 8) of
``acc[t2]``, linearly, during the steady-state loop".

The predictive analyzer (:mod:`repro.analysis.predict`) walks plans instead
of traces: per-line thread overlap and write intent fall out of the region
algebra, so a workload can be classified for false sharing without
generating a single access.  Plans mirror their generator's allocation
*order* exactly, which is what makes the symbol addresses — and therefore
the line-level predictions — match the traced reality byte for byte.

Temporal model: each use lives in a ``phase`` (0 = steady-state loop,
1 = end/merge phase; phases never overlap in time) and covers a position
window inside its phase.  ``order`` says how element visits map to time
within that window: ``"linear"`` means visit position grows with element
index (a partitioned sweep — neighbouring partitions touch their shared
boundary line at *disjoint* times, the hand-off pattern that must not be
called contention), ``"scattered"`` means any element may be touched at any
time.  ``bursts_per_line`` estimates how many temporally separated visit
clusters each line receives, which feeds the same refetch-rate arithmetic
the trace-based analyzer applies to real streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.symbols import Symbol, SymbolTable
from repro.errors import ConfigError
from repro.memory.allocator import BumpAllocator
from repro.memory.layout import LINE_SIZE
from repro.workloads.base import Mode, stride_of

#: Intra-use visit-order kinds.
USE_ORDERS = ("linear", "scattered")

#: Same-line revisit gap (in accesses) below which a line stays resident and
#: revisits are free; mirrors the trace analyzer's refetch window.
HOT_GAP = 32


@dataclass(frozen=True)
class RegionUse:
    """One thread's accesses to an element range of one symbol."""

    symbol: str
    tid: int
    reads: int
    writes: int
    start: int = 0
    stop: int = 1
    step: int = 1
    order: str = "linear"
    phase: int = 0
    bursts_per_line: float = 1.0

    def __post_init__(self) -> None:
        if self.reads < 0 or self.writes < 0:
            raise ConfigError("use needs reads >= 0 and writes >= 0")
        if self.step < 1 or self.stop <= self.start:
            raise ConfigError("use needs step >= 1 and stop > start")
        if self.order not in USE_ORDERS:
            raise ConfigError(f"order must be one of {USE_ORDERS}")
        if self.phase not in (0, 1):
            raise ConfigError("phase must be 0 (loop) or 1 (end)")
        if self.bursts_per_line < 1.0:
            raise ConfigError("bursts_per_line must be >= 1")

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def n_elements(self) -> int:
        return len(range(self.start, self.stop, self.step))

    def to_dict(self) -> Dict[str, object]:
        return {
            "symbol": self.symbol,
            "tid": self.tid,
            "reads": int(self.reads),
            "writes": int(self.writes),
            "elements": [int(self.start), int(self.stop), int(self.step)],
            "order": self.order,
            "phase": self.phase,
            "bursts_per_line": round(float(self.bursts_per_line), 3),
        }


@dataclass
class AccessPlan:
    """A workload's symbolic layout and per-thread access summary."""

    name: str
    nthreads: int
    symbols: SymbolTable
    uses: List[RegionUse]
    ipa: List[float]
    extra_instructions: List[int]
    meta: Dict[str, object] = field(default_factory=dict)

    def validate(self) -> "AccessPlan":
        if len(self.ipa) != self.nthreads:
            raise ConfigError("plan needs one ipa per thread")
        if len(self.extra_instructions) != self.nthreads:
            raise ConfigError("plan needs one extra-instruction count per thread")
        for use in self.uses:
            if use.symbol not in self.symbols:
                raise ConfigError(f"use references unknown symbol {use.symbol!r}")
            if not 0 <= use.tid < self.nthreads:
                raise ConfigError(f"use tid {use.tid} outside [0,{self.nthreads})")
            sym = self.symbols[use.symbol]
            if use.stop > max(sym.length, 1):
                raise ConfigError(
                    f"use of {use.symbol!r} stops at element {use.stop}, "
                    f"but the symbol has {sym.length}"
                )
        return self

    # ------------------------------------------------------------- summaries

    def scope(self) -> str:
        """Stable identity of the analyzed configuration.

        Used as the fingerprint scope for lint baselining: the same
        workload at the same mode and thread count keeps the same scope
        (and therefore the same finding fingerprints) across runs.
        """
        m = self.meta
        if "mode" in m:
            return (f"{m.get('workload', self.name)}/{m['mode']}"
                    f"/t{self.nthreads}")
        if "opt" in m:
            return (f"{m.get('workload', self.name)}/{m.get('input', '?')}"
                    f"/{m['opt']}/t{self.nthreads}")
        return f"{self.name}/t{self.nthreads}"

    def uses_for(self, tid: int) -> List[RegionUse]:
        return [u for u in self.uses if u.tid == tid]

    def uses_of(self, symbol: str) -> List[RegionUse]:
        return [u for u in self.uses if u.symbol == symbol]

    def thread_accesses(self, tid: int) -> int:
        return sum(u.accesses for u in self.uses if u.tid == tid)

    @property
    def total_accesses(self) -> int:
        return sum(u.accesses for u in self.uses)

    @property
    def total_instructions(self) -> int:
        # Mirrors ThreadTrace.instructions: round(n_accesses * ipa) + extra.
        return sum(
            int(round(self.thread_accesses(t) * self.ipa[t]))
            + self.extra_instructions[t]
            for t in range(self.nthreads)
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "threads": self.nthreads,
            "total_accesses": int(self.total_accesses),
            "total_instructions": int(self.total_instructions),
            "meta": dict(sorted(self.meta.items())),
            "symbols": self.symbols.to_dict(),
            "uses": [u.to_dict() for u in self.uses],
        }


# ---------------------------------------------------------------- modelling

def visit_kind(mode: Mode, pattern: str) -> str:
    """Intra-partition visit order a generator's ``ordered_visit`` yields."""
    if mode is not Mode.BAD_MA or pattern == "linear":
        return "linear"
    return "scattered"


def hostile_bursts(mode: Mode, pattern: str, elems_per_line: int) -> float:
    """Visit clusters per line for one sweep under a visit pattern.

    A linear sweep touches each line's elements consecutively (one burst);
    a random permutation scatters them into ~one burst per element; a
    stride-S walk revisits each line once per interleaved pass, capped by
    how many elements the line holds.
    """
    k = max(1, elems_per_line)
    if visit_kind(mode, pattern) == "linear":
        return 1.0
    if pattern == "random":
        return float(k)
    return float(min(max(stride_of(pattern), 1), k))


def gather_bursts(hits: int, table_lines: int, gap: float) -> float:
    """Visit clusters per line for ``hits`` uniform random table lookups.

    ``gap`` is the expected access distance between touches of one line;
    below the residency window the table is cache-hot and revisits are
    free, otherwise every touch lands on a cooled line.
    """
    if table_lines <= 0 or hits <= 0 or gap <= HOT_GAP:
        return 1.0
    return max(1.0, hits / table_lines)


def sync_inserts(n_body: int, every: int) -> int:
    """How many sync RMWs ``with_sync`` injects into an ``n_body`` stream."""
    if every <= 0:
        return 0
    return n_body // every


class PlanBuilder:
    """Mirror a generator's allocation sequence while recording symbols.

    Wraps the same :class:`BumpAllocator` the generator uses, so calling
    the allocation methods in generator order reproduces identical
    addresses; every allocation is simultaneously registered as a
    :class:`Symbol`.
    """

    def __init__(self, name: str, nthreads: int, base: int = 4096) -> None:
        self.name = name
        self.nthreads = nthreads
        self.alloc = BumpAllocator(base)
        self.symbols = SymbolTable()
        self.uses: List[RegionUse] = []

    # ------------------------------------------------------------ allocation

    def region(self, name: str, nbytes: int, align: int = 64, *,
               size: Optional[int] = None, **symkw) -> Symbol:
        """Allocate ``nbytes`` and register a symbol over (part of) it."""
        base = self.alloc.alloc(nbytes, align=align)
        return self.symbols.add(
            Symbol(name, base, nbytes if size is None else size, **symkw)
        )

    def line_region(self, name: str, nbytes: int = LINE_SIZE, *,
                    size: Optional[int] = None, **symkw) -> Symbol:
        """Mirror ``alloc_line_aligned``: a fresh line-aligned region."""
        return self.region(name, nbytes, align=LINE_SIZE, size=size, **symkw)

    def array(self, name: str, elem_size: int, length: int, align: int = 64,
              stride: int = 0, **symkw) -> Symbol:
        """Mirror ``alloc_array`` and register the layout under ``name``."""
        layout = self.alloc.alloc_array(elem_size, length, align=align,
                                        stride=stride)
        return self.symbols.add_array(name, layout, **symkw)

    def thread_slots(self, group: str, mode: Mode, elem_size: int = 8,
                     kind: str = "slot",
                     field_size: Optional[int] = None) -> List[Symbol]:
        """Mirror ``builders.thread_slots``: packed iff the mode is bad-fs.

        ``elem_size`` is the allocation pitch (the generator's slot size);
        ``field_size`` is the granularity the slot is accessed at (defaults
        to the pitch, capped at 8 — a 16-byte slot holds two 8-byte fields).
        """
        fsz = field_size if field_size is not None else min(elem_size, 8)
        out = []
        if mode is Mode.BAD_FS:
            base = self.alloc.alloc(self.nthreads * elem_size, align=LINE_SIZE)
            bases = [base + t * elem_size for t in range(self.nthreads)]
        else:
            bases = [
                self.alloc.alloc(max(elem_size, LINE_SIZE), align=LINE_SIZE)
                for _ in range(self.nthreads)
            ]
        for t, b in enumerate(bases):
            out.append(self.symbols.add(Symbol(
                f"{group}[t{t}]", b, elem_size,
                kind=kind, tid=t, elem_size=fsz, group=group,
            )))
        return out

    # --------------------------------------------------------------- accesses

    def use(self, symbol: Symbol, tid: int, *, reads: int = 0,
            writes: int = 0, start: int = 0, stop: Optional[int] = None,
            step: int = 1, order: str = "linear", phase: int = 0,
            bursts: float = 1.0) -> None:
        if reads == 0 and writes == 0:
            return
        if stop is None:
            stop = max(symbol.length, 1)
        self.uses.append(RegionUse(
            symbol.name, tid, reads, writes, start=start, stop=stop,
            step=step, order=order, phase=phase, bursts_per_line=bursts,
        ))

    def sync_use(self, sync: Symbol, tid: int, n_body: int,
                 every: int) -> int:
        """Record the periodic sync-word RMWs ``with_sync`` would inject."""
        n = sync_inserts(n_body, every)
        self.use(sync, tid, reads=n, writes=n, order="scattered",
                 bursts=float(max(n, 1)))
        return n

    # ----------------------------------------------------------------- result

    def finish(self, ipa, extra=None, **meta) -> AccessPlan:
        """Assemble the validated plan; ``ipa`` may be scalar or per-thread."""
        if isinstance(ipa, (int, float)):
            ipa = [float(ipa)] * self.nthreads
        if extra is None:
            extra = [0] * self.nthreads
        plan = AccessPlan(
            self.name, self.nthreads, self.symbols, self.uses,
            [float(x) for x in ipa], [int(x) for x in extra], dict(meta),
        )
        return plan.validate()


def sweeps_of(iters: int, span: int) -> float:
    """Full passes over a ``span``-element range in ``iters`` visits."""
    if span <= 0:
        return 1.0
    return max(1.0, math.ceil(iters / span))


def elems_per_line(elem_size: int, stride: int = 0) -> int:
    """Array elements sharing one cache line (1 when stride >= a line)."""
    pitch = stride or elem_size
    return max(1, LINE_SIZE // max(pitch, 1))


def clamp_range(start: int, span: int, total: int) -> Tuple[int, int]:
    """The generators' ``start % total`` + span element window."""
    s = start % max(total, 1)
    return s, s + span
