"""Workload registry: name -> instance lookup for minis and suites."""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WorkloadError
from repro.workloads.base import Workload
from repro.workloads.mini_mt import MT_PROGRAMS
from repro.workloads.mini_seq import SEQ_PROGRAMS

_REGISTRY: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    """Add a workload instance to the global registry."""
    if not workload.name or workload.name == "abstract":
        raise WorkloadError("workload must define a name")
    if workload.name in _REGISTRY:
        raise WorkloadError(f"duplicate workload name: {workload.name}")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    """Look up a workload by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_workloads() -> List[Workload]:
    """All registered workloads, in registration order."""
    return list(_REGISTRY.values())


def mt_miniprograms() -> List[Workload]:
    """The 8 multi-threaded mini-programs (training Part A)."""
    return [w for w in _REGISTRY.values()
            if w.kind == "mt" and w.name in _MT_NAMES]


def seq_miniprograms() -> List[Workload]:
    """The sequential mini-programs (training Part B)."""
    return [w for w in _REGISTRY.values()
            if w.kind == "seq" and w.name in _SEQ_NAMES]


_MT_NAMES = frozenset(cls.name for cls in MT_PROGRAMS)
_SEQ_NAMES = frozenset(cls.name for cls in SEQ_PROGRAMS)

for _cls in MT_PROGRAMS + SEQ_PROGRAMS:
    register(_cls())
