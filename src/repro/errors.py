"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A run configuration is invalid (bad thread count, mode, size...)."""


class TraceError(ReproError):
    """A memory-access trace is malformed or inconsistent."""


class SimulationError(ReproError):
    """The cache/coherence simulation reached an inconsistent state."""


class PMUError(ReproError):
    """A performance-monitoring request cannot be satisfied."""


class UnknownEventError(PMUError):
    """An event name or (code, umask) pair is not in the catalog."""


class DatasetError(ReproError):
    """A machine-learning dataset is malformed (shape/label mismatch)."""


class NotFittedError(ReproError):
    """A model was used before being trained."""


class WorkloadError(ReproError):
    """A workload was asked to run in an unsupported configuration."""


class BaselineError(ReproError):
    """A baseline tool (shadow-memory / SHERIFF model) cannot run."""


class ExperimentError(ReproError):
    """An experiment id is unknown or its pipeline failed."""


class TelemetryError(ReproError):
    """A telemetry request is invalid (bad span state, bad baseline...)."""


class ServeError(ReproError):
    """The online detection service hit a protocol or lifecycle error."""


class ResultsError(ReproError):
    """The durable run store is corrupt, mis-versioned, or fed an
    unrecognized payload."""
