"""Comparison classifiers for the "we experimented with several" step.

The paper (Section 3) tried several public-domain classifiers and picked
J48.  These lightweight reimplementations — majority-class ZeroR, single-
attribute OneR, Gaussian naive Bayes, and k-nearest-neighbours — let the
classifier-ablation bench reproduce that comparison without external
dependencies.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import DatasetError, NotFittedError
from repro.ml.dataset import Dataset


class ZeroR:
    """Always predicts the majority class; the accuracy floor."""

    name = "ZeroR"

    def __init__(self) -> None:
        self.label_: Optional[str] = None

    def fit(self, data: Dataset) -> "ZeroR":
        if len(data) == 0:
            raise DatasetError("cannot fit on empty dataset")
        counts = data.class_counts()
        self.label_ = max(sorted(counts), key=lambda c: counts[c])
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.label_ is None:
            raise NotFittedError("ZeroR has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return np.array([self.label_] * X.shape[0], dtype=object)


class OneR:
    """Best single-feature, single-threshold rule set.

    For each feature, builds the optimal 1-D decision stump with up to
    ``bins`` cut points and keeps the feature with the lowest training error.
    """

    name = "OneR"

    def __init__(self, bins: int = 12) -> None:
        if bins < 2:
            raise DatasetError("bins must be >= 2")
        self.bins = bins
        self.feature_: Optional[int] = None
        self.edges_: Optional[np.ndarray] = None
        self.labels_: Optional[list] = None
        self.fallback_: Optional[str] = None

    def fit(self, data: Dataset) -> "OneR":
        if len(data) == 0:
            raise DatasetError("cannot fit on empty dataset")
        counts = data.class_counts()
        self.fallback_ = max(sorted(counts), key=lambda c: counts[c])
        best_err = None
        for f in range(data.n_features):
            col = data.X[:, f]
            qs = np.quantile(col, np.linspace(0, 1, self.bins + 1)[1:-1])
            edges = np.unique(qs)
            bins = np.digitize(col, edges)
            labels = []
            err = 0
            for b in range(edges.size + 1):
                mask = bins == b
                if not mask.any():
                    labels.append(self.fallback_)
                    continue
                ys = data.y[mask]
                vals, cnts = np.unique(ys.astype(str), return_counts=True)
                win = vals[int(cnts.argmax())]
                labels.append(str(win))
                err += int(mask.sum() - cnts.max())
            if best_err is None or err < best_err:
                best_err = err
                self.feature_ = f
                self.edges_ = edges
                self.labels_ = labels
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.feature_ is None:
            raise NotFittedError("OneR has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        bins = np.digitize(X[:, self.feature_], self.edges_)
        return np.array([self.labels_[int(b)] for b in bins], dtype=object)


class GaussianNB:
    """Gaussian naive Bayes with per-class feature means/variances."""

    name = "NaiveBayes"

    def __init__(self, var_smoothing: float = 1e-12) -> None:
        self.var_smoothing = var_smoothing
        self.classes_: Optional[list] = None
        self.theta_: Optional[np.ndarray] = None
        self.var_: Optional[np.ndarray] = None
        self.prior_: Optional[np.ndarray] = None

    def fit(self, data: Dataset) -> "GaussianNB":
        if len(data) == 0:
            raise DatasetError("cannot fit on empty dataset")
        self.classes_ = data.classes
        k, d = len(self.classes_), data.n_features
        self.theta_ = np.zeros((k, d))
        self.var_ = np.zeros((k, d))
        self.prior_ = np.zeros(k)
        overall_var = data.X.var(axis=0).max() if len(data) > 1 else 1.0
        eps = self.var_smoothing * max(overall_var, 1e-30)
        for i, c in enumerate(self.classes_):
            rows = data.X[data.y == c]
            self.theta_[i] = rows.mean(axis=0)
            self.var_[i] = rows.var(axis=0) + eps
            self.prior_[i] = rows.shape[0] / len(data)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise NotFittedError("GaussianNB has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        # log p(c) + sum_f log N(x_f | theta, var)
        ll = np.log(self.prior_)[None, :] - 0.5 * (
            np.log(2 * np.pi * self.var_)[None, :, :]
            + (X[:, None, :] - self.theta_[None, :, :]) ** 2
            / self.var_[None, :, :]
        ).sum(axis=2)
        idx = ll.argmax(axis=1)
        return np.array([self.classes_[int(i)] for i in idx], dtype=object)


class KNN:
    """k-nearest-neighbours with per-feature standardization."""

    name = "kNN"

    def __init__(self, k: int = 5) -> None:
        if k < 1:
            raise DatasetError("k must be >= 1")
        self.k = k
        self.X_: Optional[np.ndarray] = None
        self.y_: Optional[np.ndarray] = None
        self.mu_: Optional[np.ndarray] = None
        self.sd_: Optional[np.ndarray] = None

    def fit(self, data: Dataset) -> "KNN":
        if len(data) == 0:
            raise DatasetError("cannot fit on empty dataset")
        self.mu_ = data.X.mean(axis=0)
        self.sd_ = data.X.std(axis=0)
        self.sd_[self.sd_ == 0] = 1.0
        self.X_ = (data.X - self.mu_) / self.sd_
        self.y_ = data.y.copy()
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.X_ is None:
            raise NotFittedError("KNN has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Z = (X - self.mu_) / self.sd_
        d2 = ((Z[:, None, :] - self.X_[None, :, :]) ** 2).sum(axis=2)
        k = min(self.k, self.X_.shape[0])
        nn = np.argpartition(d2, k - 1, axis=1)[:, :k]
        out = []
        for row in nn:
            vals, cnts = np.unique(self.y_[row].astype(str), return_counts=True)
            out.append(str(vals[int(cnts.argmax())]))
        return np.array(out, dtype=object)


ALL_BASELINE_CLASSIFIERS: Dict[str, type] = {
    "ZeroR": ZeroR,
    "OneR": OneR,
    "NaiveBayes": GaussianNB,
    "kNN": KNN,
}
