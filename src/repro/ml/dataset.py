"""Labeled datasets for classifier training and evaluation.

A :class:`Dataset` is a feature matrix (rows = program runs, columns =
normalized event counts) with string labels ("good" / "bad-fs" / "bad-ma")
and column names.  It deliberately knows nothing about workloads or PMUs;
conversions live in :mod:`repro.core.training`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.utils.rng import rng_for


@dataclass
class Instance:
    """One labeled training example."""

    features: np.ndarray
    label: str
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=float)
        if self.features.ndim != 1:
            raise DatasetError("instance features must be a 1-D vector")
        if not self.label:
            raise DatasetError("instance label must be non-empty")


class Dataset:
    """An immutable (X, y) pair with named feature columns."""

    def __init__(
        self,
        X: np.ndarray,
        y: Sequence[str],
        feature_names: Sequence[str],
        meta: Optional[List[Dict[str, object]]] = None,
    ) -> None:
        self.X = np.asarray(X, dtype=float)
        self.y = np.asarray(list(y), dtype=object)
        self.feature_names = list(feature_names)
        if self.X.ndim != 2:
            raise DatasetError("X must be 2-D")
        if self.X.shape[0] != self.y.shape[0]:
            raise DatasetError(
                f"X has {self.X.shape[0]} rows but y has {self.y.shape[0]} labels"
            )
        if self.X.shape[1] != len(self.feature_names):
            raise DatasetError(
                f"X has {self.X.shape[1]} columns but "
                f"{len(self.feature_names)} feature names were given"
            )
        if not np.isfinite(self.X).all():
            raise DatasetError("X contains non-finite values")
        self.meta = meta if meta is not None else [{} for _ in range(len(self.y))]
        if len(self.meta) != len(self.y):
            raise DatasetError("meta must have one entry per row")

    # ------------------------------------------------------------- basics

    def __len__(self) -> int:
        return int(self.y.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.X.shape[1])

    @property
    def classes(self) -> List[str]:
        """Distinct labels in first-appearance order."""
        seen: Dict[str, None] = {}
        for lab in self.y:
            seen.setdefault(lab, None)
        return list(seen)

    def class_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for lab in self.y:
            out[lab] = out.get(lab, 0) + 1
        return out

    def subset(self, idx) -> "Dataset":
        """Row subset (keeps columns and names)."""
        idx = np.asarray(idx)
        return Dataset(
            self.X[idx],
            list(self.y[idx]),
            self.feature_names,
            [self.meta[int(i)] for i in np.arange(len(self))[idx]]
            if idx.dtype == bool
            else [self.meta[int(i)] for i in idx],
        )

    def select_features(self, names: Sequence[str]) -> "Dataset":
        """Column subset by feature name (ablation studies)."""
        missing = [n for n in names if n not in self.feature_names]
        if missing:
            raise DatasetError(f"unknown features: {missing}")
        cols = [self.feature_names.index(n) for n in names]
        return Dataset(self.X[:, cols], list(self.y), list(names), self.meta)

    def concat(self, other: "Dataset") -> "Dataset":
        """Row-wise concatenation; feature names must match exactly."""
        if self.feature_names != other.feature_names:
            raise DatasetError("cannot concat datasets with different features")
        return Dataset(
            np.vstack([self.X, other.X]),
            list(self.y) + list(other.y),
            self.feature_names,
            self.meta + other.meta,
        )

    @classmethod
    def from_instances(
        cls, instances: Sequence[Instance], feature_names: Sequence[str]
    ) -> "Dataset":
        if not instances:
            return cls(np.empty((0, len(feature_names))), [], feature_names, [])
        X = np.vstack([inst.features for inst in instances])
        return cls(
            X,
            [inst.label for inst in instances],
            feature_names,
            [inst.meta for inst in instances],
        )

    # --------------------------------------------------------------- folds

    def stratified_folds(
        self, k: int = 10, seed: int = 0
    ) -> Iterator[Tuple["Dataset", "Dataset"]]:
        """Yield (train, test) pairs for stratified k-fold cross-validation.

        Stratification matches Weka's: within each class, instances are
        shuffled and dealt round-robin into folds, so class proportions in
        each fold track the full set.
        """
        if k < 2:
            raise DatasetError("k must be >= 2")
        if len(self) < k:
            raise DatasetError(f"cannot make {k} folds from {len(self)} rows")
        rng = rng_for("folds", seed, len(self))
        fold_of = np.empty(len(self), dtype=int)
        for cls_label in self.classes:
            idx = np.flatnonzero(self.y == cls_label)
            idx = idx[rng.permutation(idx.size)]
            fold_of[idx] = np.arange(idx.size) % k
        for f in range(k):
            test_mask = fold_of == f
            yield self.subset(~test_mask), self.subset(test_mask)
