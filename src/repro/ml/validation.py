"""Model validation: stratified cross-validation and confusion matrices.

Reproduces the paper's Section 3.2 evaluation protocol: stratified 10-fold
cross-validation on the training data, reported as an overall success rate
and a confusion matrix (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.errors import DatasetError
from repro.ml.dataset import Dataset
from repro.utils.tables import render_table


@dataclass
class ConfusionMatrix:
    """Counts of (actual, predicted) pairs over a fixed class order."""

    classes: List[str]
    matrix: np.ndarray  # rows = actual, cols = predicted

    @classmethod
    def empty(cls, classes: Sequence[str]) -> "ConfusionMatrix":
        k = len(classes)
        return cls(list(classes), np.zeros((k, k), dtype=int))

    def add(self, actual: str, predicted: str) -> None:
        try:
            i = self.classes.index(actual)
        except ValueError:
            raise DatasetError(f"unknown actual class {actual!r}") from None
        if predicted not in self.classes:
            # A predicted label outside the training classes counts as an
            # error against every class; record it in a synthetic column.
            self.classes.append(predicted)
            k = len(self.classes)
            grown = np.zeros((k, k), dtype=int)
            grown[: k - 1, : k - 1] = self.matrix
            self.matrix = grown
        j = self.classes.index(predicted)
        self.matrix[i, j] += 1

    def merge(self, other: "ConfusionMatrix") -> "ConfusionMatrix":
        if self.classes != other.classes:
            raise DatasetError("cannot merge confusion matrices: class mismatch")
        return ConfusionMatrix(list(self.classes), self.matrix + other.matrix)

    @property
    def total(self) -> int:
        return int(self.matrix.sum())

    @property
    def correct(self) -> int:
        return int(np.trace(self.matrix))

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0

    def count(self, actual: str, predicted: str) -> int:
        return int(
            self.matrix[self.classes.index(actual), self.classes.index(predicted)]
        )

    def per_class(self) -> Dict[str, Dict[str, float]]:
        """Precision / recall / F1 per class."""
        out: Dict[str, Dict[str, float]] = {}
        for i, c in enumerate(self.classes):
            tp = self.matrix[i, i]
            fn = self.matrix[i].sum() - tp
            fp = self.matrix[:, i].sum() - tp
            prec = tp / (tp + fp) if tp + fp else 0.0
            rec = tp / (tp + fn) if tp + fn else 0.0
            f1 = 2 * prec * rec / (prec + rec) if prec + rec else 0.0
            out[c] = {"precision": prec, "recall": rec, "f1": f1,
                      "support": int(tp + fn)}
        return out

    def render(self, title: str = "Confusion matrix") -> str:
        headers = ["actual \\ predicted"] + self.classes
        rows = [
            [c] + [int(v) for v in self.matrix[i]]
            for i, c in enumerate(self.classes)
        ]
        return render_table(headers, rows, title=title)


def cross_validate(
    make_model: Callable[[], object],
    data: Dataset,
    k: int = 10,
    seed: int = 0,
) -> ConfusionMatrix:
    """Stratified k-fold CV; returns the pooled confusion matrix.

    ``make_model`` builds a fresh unfitted model per fold (any object with
    ``fit(Dataset)`` and ``predict(X)``).
    """
    cm = ConfusionMatrix.empty(data.classes)
    for train, test in data.stratified_folds(k=k, seed=seed):
        model = make_model()
        model.fit(train)
        pred = model.predict(test.X)
        for actual, p in zip(test.y, pred):
            cm.add(str(actual), str(p))
    return cm


def holdout_score(
    make_model: Callable[[], object],
    train: Dataset,
    test: Dataset,
) -> ConfusionMatrix:
    """Train on one dataset, evaluate on another."""
    model = make_model()
    model.fit(train)
    cm = ConfusionMatrix.empty(sorted(set(train.classes) | set(test.classes)))
    for actual, p in zip(test.y, model.predict(test.X)):
        cm.add(str(actual), str(p))
    return cm
