"""Model persistence: save and load trained trees as plain JSON.

The paper's workflow is train-once / classify-anywhere: the classifier
trained on one machine's mini-programs is applied to arbitrary programs
later.  That needs a model file.  Trees serialize to a small, readable JSON
document (no pickle: the format is stable, diffable and safe to load).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.errors import DatasetError, NotFittedError
from repro.ml.c45 import C45Classifier
from repro.ml.tree_model import TreeNode

FORMAT = "repro-c45"
VERSION = 1


def _node_to_dict(node: TreeNode) -> Dict:
    if node.is_leaf:
        return {
            "leaf": True,
            "label": node.label,
            "n": node.n,
            "errors": node.errors,
            "class_counts": node.class_counts,
        }
    return {
        "leaf": False,
        "feature": node.feature,
        "threshold": node.threshold,
        "label": node.label,
        "n": node.n,
        "errors": node.errors,
        "left": _node_to_dict(node.left),
        "right": _node_to_dict(node.right),
    }


def _node_from_dict(d: Dict) -> TreeNode:
    try:
        if d["leaf"]:
            return TreeNode(
                label=d["label"],
                n=int(d["n"]),
                errors=int(d["errors"]),
                class_counts=dict(d.get("class_counts", {})),
            )
        return TreeNode(
            feature=int(d["feature"]),
            threshold=float(d["threshold"]),
            left=_node_from_dict(d["left"]),
            right=_node_from_dict(d["right"]),
            label=d.get("label", ""),
            n=int(d.get("n", 0)),
            errors=int(d.get("errors", 0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DatasetError(f"malformed tree node: {exc}") from exc


def classifier_to_dict(clf: C45Classifier) -> Dict:
    """Serialize a fitted classifier to a JSON-compatible dict."""
    if clf.root_ is None:
        raise NotFittedError("cannot serialize an unfitted classifier")
    return {
        "format": FORMAT,
        "version": VERSION,
        "params": {"cf": clf.cf, "min_leaf": clf.min_leaf,
                   "prune": clf.prune},
        "classes": list(clf.classes_),
        "feature_names": list(clf.feature_names_),
        "tree": _node_to_dict(clf.root_),
    }


def classifier_from_dict(d: Dict) -> C45Classifier:
    """Rebuild a classifier from :func:`classifier_to_dict` output."""
    if d.get("format") != FORMAT:
        raise DatasetError(f"not a {FORMAT} document")
    if int(d.get("version", -1)) > VERSION:
        raise DatasetError(
            f"model version {d['version']} is newer than supported "
            f"({VERSION})"
        )
    params = d.get("params", {})
    clf = C45Classifier(
        cf=float(params.get("cf", 0.25)),
        min_leaf=int(params.get("min_leaf", 2)),
        prune=bool(params.get("prune", True)),
    )
    clf.classes_ = list(d["classes"])
    clf.feature_names_ = list(d["feature_names"])
    clf.root_ = _node_from_dict(d["tree"])
    return clf


def save_classifier(clf: C45Classifier, path: Union[str, Path]) -> None:
    """Write a fitted classifier to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(classifier_to_dict(clf), indent=2))


def load_classifier(path: Union[str, Path]) -> C45Classifier:
    """Load a classifier saved with :func:`save_classifier`."""
    try:
        doc = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise DatasetError(f"not a valid model file: {exc}") from exc
    return classifier_from_dict(doc)
