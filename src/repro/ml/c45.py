"""C4.5 decision-tree learner (the J48 configuration the paper used).

Implements the parts of Quinlan's C4.5 that matter for continuous
attributes, matching Weka J48's defaults:

* binary splits ``attr <= t`` with thresholds at midpoints of consecutive
  distinct attribute values;
* split selection by gain ratio among candidates whose information gain is
  at least the average positive gain;
* Quinlan's MDL penalty ``log2(candidates)/N`` on continuous-attribute gain;
* minimum of ``min_leaf`` (default 2) instances per leaf;
* pessimistic error pruning with confidence factor CF (default 0.25) via
  subtree replacement.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np
from scipy.stats import norm

from repro.errors import DatasetError, NotFittedError
from repro.ml.dataset import Dataset
from repro.ml.tree_model import TreeNode


def entropy(counts: np.ndarray) -> float:
    """Shannon entropy in bits of a count vector."""
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log2(p)).sum())


def _class_counts(y_codes: np.ndarray, n_classes: int) -> np.ndarray:
    return np.bincount(y_codes, minlength=n_classes)


class C45Classifier:
    """A J48-style decision tree over continuous features.

    Parameters mirror Weka: ``cf`` is the pruning confidence factor
    (smaller prunes more), ``min_leaf`` the minimum instances per leaf,
    ``prune=False`` gives the unpruned tree.
    """

    def __init__(
        self,
        cf: float = 0.25,
        min_leaf: int = 2,
        prune: bool = True,
        max_depth: Optional[int] = None,
    ) -> None:
        if not 0.0 < cf < 0.5:
            raise DatasetError("cf must be in (0, 0.5)")
        if min_leaf < 1:
            raise DatasetError("min_leaf must be >= 1")
        self.cf = cf
        self.min_leaf = min_leaf
        self.prune = prune
        self.max_depth = max_depth
        self.root_: Optional[TreeNode] = None
        self.classes_: Optional[list] = None
        self.feature_names_: Optional[list] = None
        #: Lazily compiled flat-array form of ``root_`` (see ``compiled``).
        self._compiled_cache: Optional[tuple] = None
        # z for the one-sided upper confidence bound used in pruning.
        self._z = float(norm.ppf(1.0 - cf))

    # ------------------------------------------------------------------ fit

    def fit(self, data: Dataset) -> "C45Classifier":
        if len(data) == 0:
            raise DatasetError("cannot fit on an empty dataset")
        self.classes_ = data.classes
        self.feature_names_ = list(data.feature_names)
        code = {c: i for i, c in enumerate(self.classes_)}
        y_codes = np.array([code[lab] for lab in data.y], dtype=np.intp)
        self.root_ = self._build(data.X, y_codes, depth=0)
        if self.prune:
            self._prune(self.root_)
        return self

    def _leaf(self, y_codes: np.ndarray) -> TreeNode:
        counts = _class_counts(y_codes, len(self.classes_))
        best = int(counts.argmax())
        n = int(counts.sum())
        return TreeNode(
            label=self.classes_[best],
            n=n,
            errors=n - int(counts[best]),
            class_counts={
                self.classes_[i]: int(c) for i, c in enumerate(counts) if c
            },
        )

    def _build(self, X: np.ndarray, y_codes: np.ndarray, depth: int) -> TreeNode:
        leaf = self._leaf(y_codes)
        n = y_codes.size
        if (
            leaf.errors == 0
            or n < 2 * self.min_leaf
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return leaf
        split = self._best_split(X, y_codes)
        if split is None:
            return leaf
        f, t = split
        mask = X[:, f] <= t
        node = TreeNode(
            feature=f,
            threshold=t,
            left=self._build(X[mask], y_codes[mask], depth + 1),
            right=self._build(X[~mask], y_codes[~mask], depth + 1),
            label=leaf.label,
            n=leaf.n,
            errors=leaf.errors,
            class_counts=leaf.class_counts,
        )
        return node

    def _best_split(
        self, X: np.ndarray, y_codes: np.ndarray
    ) -> Optional[Tuple[int, float]]:
        """(feature, threshold) maximizing gain ratio, J48 selection rule."""
        n, n_feat = X.shape
        base = entropy(_class_counts(y_codes, len(self.classes_)))
        candidates = []  # (gain, ratio, feature, threshold)
        for f in range(n_feat):
            found = self._best_threshold(X[:, f], y_codes, base, n)
            if found is not None:
                candidates.append((found[0], found[1], f, found[2]))
        if not candidates:
            return None
        avg_gain = sum(c[0] for c in candidates) / len(candidates)
        eligible = [c for c in candidates if c[0] >= avg_gain - 1e-12]
        # Max gain ratio; ties broken by gain then feature index for
        # determinism.
        best = max(eligible, key=lambda c: (c[1], c[0], -c[2]))
        return best[2], best[3]

    def _best_threshold(
        self, col: np.ndarray, y_codes: np.ndarray, base: float, n: int
    ) -> Optional[Tuple[float, float, float]]:
        """Best (gain, gain_ratio, threshold) for one continuous column."""
        order = np.argsort(col, kind="stable")
        xs = col[order]
        ys = y_codes[order]
        # Cumulative class counts left of each boundary.
        n_classes = len(self.classes_)
        onehot = np.zeros((n, n_classes))
        onehot[np.arange(n), ys] = 1.0
        cum = np.cumsum(onehot, axis=0)
        total = cum[-1]
        # Valid boundaries: between distinct consecutive values, with at
        # least min_leaf instances on each side.
        distinct = xs[1:] > xs[:-1]
        k = np.arange(1, n)
        valid = distinct & (k >= self.min_leaf) & (n - k >= self.min_leaf)
        idx = np.flatnonzero(valid)
        if idx.size == 0:
            return None
        left = cum[idx]
        right = total[None, :] - left
        nl = left.sum(axis=1)
        nr = right.sum(axis=1)

        def _h(counts, totals):
            with np.errstate(divide="ignore", invalid="ignore"):
                p = counts / totals[:, None]
                term = np.where(counts > 0, p * np.log2(p), 0.0)
            return -term.sum(axis=1)

        cond = (nl * _h(left, nl) + nr * _h(right, nr)) / n
        gain = base - cond
        # Quinlan's MDL correction for evaluating continuous splits.
        penalty = math.log2(max(idx.size, 1)) / n
        gain = gain - penalty
        pl = nl / n
        split_info = -(pl * np.log2(pl) + (1 - pl) * np.log2(1 - pl))
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(split_info > 1e-12, gain / split_info, 0.0)
        best_i = int(np.argmax(ratio - 1e-15 * np.arange(idx.size)))
        if gain[best_i] <= 0:
            # Fall back to the best raw gain if the ratio winner has none.
            best_i = int(np.argmax(gain))
            if gain[best_i] <= 0:
                return None
        b = int(idx[best_i])  # split between xs[b] and xs[b+1]
        threshold = float((xs[b] + xs[b + 1]) / 2.0)
        return float(gain[best_i]), float(ratio[best_i]), threshold

    # ---------------------------------------------------------------- prune

    def _pessimistic_errors(self, node: TreeNode) -> float:
        """Upper-confidence-bound error count for a node treated as a leaf."""
        return node.n * self._ucb(node.errors, node.n)

    def _ucb(self, e: int, n: int) -> float:
        """C4.5's upper confidence bound on the error rate (Witten & Frank)."""
        if n == 0:
            return 0.0
        z = self._z
        f = e / n
        z2 = z * z
        num = f + z2 / (2 * n) + z * math.sqrt(
            max(f / n - f * f / n + z2 / (4 * n * n), 0.0)
        )
        return min(1.0, num / (1 + z2 / n))

    def _subtree_errors(self, node: TreeNode) -> float:
        if node.is_leaf:
            return self._pessimistic_errors(node)
        return self._subtree_errors(node.left) + self._subtree_errors(node.right)

    def _prune(self, node: TreeNode) -> None:
        if node.is_leaf:
            return
        self._prune(node.left)
        self._prune(node.right)
        as_leaf = self._pessimistic_errors(node)
        as_tree = self._subtree_errors(node)
        if as_leaf <= as_tree + 0.1:
            node.feature = None
            node.left = None
            node.right = None

    # -------------------------------------------------------------- predict

    @property
    def compiled(self):
        """The fitted tree compiled to flat arrays (cached per ``root_``).

        The cache keys on the identity of ``root_``, which ``fit`` (and a
        persistence load) replaces wholesale; mutate a fitted tree in place
        and you must clear ``_compiled_cache`` yourself.
        """
        if self.root_ is None:
            raise NotFittedError("C45Classifier has not been fitted")
        cache = self._compiled_cache
        if cache is None or cache[0] is not self.root_:
            from repro.serve.inference import CompiledTree

            cache = (self.root_, CompiledTree.from_classifier(self))
            self._compiled_cache = cache
        return cache[1]

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Labels for a batch, via the compiled vectorized walker.

        Bit-identical to walking ``root_`` recursively per row (the
        compiled path performs the very same ``x[f] <= t`` comparisons);
        the flat-array form classifies thousands of rows per call.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        return self.compiled.predict_batch(X)

    def predict_one(self, x: np.ndarray) -> str:
        return str(self.predict(np.asarray(x))[0])

    def score(self, data: Dataset) -> float:
        """Classification accuracy on a dataset."""
        pred = self.predict(data.X)
        return float((pred == data.y).mean()) if len(data) else 0.0

    # ------------------------------------------------------------ reporting

    def render(self, precision: int = 6) -> str:
        if self.root_ is None:
            raise NotFittedError("C45Classifier has not been fitted")
        return self.root_.render(self.feature_names_, precision=precision)

    @property
    def n_leaves(self) -> int:
        if self.root_ is None:
            raise NotFittedError("C45Classifier has not been fitted")
        return self.root_.n_leaves()

    @property
    def n_nodes(self) -> int:
        if self.root_ is None:
            raise NotFittedError("C45Classifier has not been fitted")
        return self.root_.n_nodes()

    def used_feature_names(self) -> list:
        if self.root_ is None:
            raise NotFittedError("C45Classifier has not been fitted")
        return [self.feature_names_[i] for i in self.root_.used_features()]
