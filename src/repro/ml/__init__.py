"""Machine learning: datasets, the C4.5/J48 tree, validation, baselines."""

from repro.ml.arff import dataset_from_arff, dataset_to_arff, load_arff, save_arff
from repro.ml.baselines_ml import ALL_BASELINE_CLASSIFIERS, KNN, GaussianNB, OneR, ZeroR
from repro.ml.c45 import C45Classifier, entropy
from repro.ml.dataset import Dataset, Instance
from repro.ml.persistence import (
    classifier_from_dict,
    classifier_to_dict,
    load_classifier,
    save_classifier,
)
from repro.ml.tree_model import TreeNode
from repro.ml.validation import ConfusionMatrix, cross_validate, holdout_score

__all__ = [
    "dataset_from_arff",
    "dataset_to_arff",
    "load_arff",
    "save_arff",
    "classifier_from_dict",
    "classifier_to_dict",
    "load_classifier",
    "save_classifier",
    "ALL_BASELINE_CLASSIFIERS",
    "KNN",
    "GaussianNB",
    "OneR",
    "ZeroR",
    "C45Classifier",
    "entropy",
    "Dataset",
    "Instance",
    "TreeNode",
    "ConfusionMatrix",
    "cross_validate",
    "holdout_score",
]
