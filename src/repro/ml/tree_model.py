"""Decision-tree structure shared by the learner and its consumers.

A tree is binary over continuous attributes, J48-style: each internal node
tests ``feature <= threshold`` (left) vs ``> threshold`` (right).  The model
is a plain recursive dataclass so it can be rendered, counted, traversed and
compared in tests without touching the learner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import NotFittedError


@dataclass
class TreeNode:
    """A leaf (``feature is None``) or an internal threshold test."""

    # Internal-node fields.
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None
    # Leaf / majority fields (also kept on internal nodes for pruning).
    label: str = ""
    n: int = 0
    errors: int = 0
    class_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    def predict_one(self, x: np.ndarray) -> str:
        node = self
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node.label

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Labels for a whole batch, via the compiled flat-array walker.

        Routes through :class:`repro.serve.inference.CompiledTree`, so a
        batch of thousands of rows costs a handful of vectorized passes
        instead of a Python loop; the output is bit-identical to calling
        :meth:`predict_one` per row.  The compilation is rebuilt per call
        (it is O(n_nodes), trivial next to any real batch) so in-place
        edits of the tree are always honoured.
        """
        from repro.serve.inference import CompiledTree

        return CompiledTree.from_tree(self).predict_batch(X)

    # ------------------------------------------------------------ metrics

    def n_leaves(self) -> int:
        if self.is_leaf:
            return 1
        return self.left.n_leaves() + self.right.n_leaves()

    def n_nodes(self) -> int:
        """Total node count (internal + leaves), the paper's "11 nodes"."""
        if self.is_leaf:
            return 1
        return 1 + self.left.n_nodes() + self.right.n_nodes()

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth(), self.right.depth())

    def used_features(self) -> List[int]:
        """Feature indices tested anywhere in the tree, in preorder."""
        out: List[int] = []

        def walk(node: "TreeNode") -> None:
            if node.is_leaf:
                return
            if node.feature not in out:
                out.append(node.feature)
            walk(node.left)
            walk(node.right)

        walk(self)
        return out

    def leaf_labels(self) -> List[str]:
        if self.is_leaf:
            return [self.label]
        return self.left.leaf_labels() + self.right.leaf_labels()

    # ----------------------------------------------------------- rendering

    def render(
        self,
        feature_names: Optional[Sequence[str]] = None,
        indent: str = "",
        precision: int = 6,
    ) -> str:
        """Weka J48-style text rendering of the tree."""

        def fname(i: int) -> str:
            if feature_names is not None:
                return str(feature_names[i])
            return f"x{i}"

        lines: List[str] = []

        def walk(node: "TreeNode", prefix: str) -> None:
            if node.is_leaf:
                lines[-1] += f": {node.label} ({node.n}/{node.errors})"
                return
            for branch, op in ((node.left, "<="), (node.right, ">")):
                lines.append(
                    f"{prefix}{fname(node.feature)} {op} "
                    f"{node.threshold:.{precision}g}"
                )
                if branch.is_leaf:
                    walk(branch, prefix)
                else:
                    walk(branch, prefix + "|   ")

        if self.is_leaf:
            return f"{indent}: {self.label} ({self.n}/{self.errors})"
        walk(self, indent)
        return "\n".join(lines)


#: Public alias: a bare tree *is* the model (the learner's ``root_``); the
#: name exists so API parity with ``C45Classifier`` reads naturally
#: (``TreeModel.predict`` / ``TreeModel.predict_one``).
TreeModel = TreeNode


def require_fitted(model) -> None:
    """Raise NotFittedError unless the model has been trained."""
    if getattr(model, "root_", None) is None and not getattr(model, "fitted_", False):
        raise NotFittedError(f"{type(model).__name__} has not been fitted")
